"""Batch scheduler: dispatch independent cases across worker processes.

The paper's experiments are embarrassingly parallel — every Table I /
Fig. 2 / Fig. 3 / FLOPS-study artifact is a list of fully independent
``run_case`` simulations.  :func:`run_cases` is the batch API the
experiment modules declare their full case list to:

1. keys are computed for every spec and duplicates collapse onto one
   in-flight entry (a Fig. 2 sweep requests each baseline many times);
2. the cache hierarchy (in-process memo, then the persistent disk cache)
   is consulted per unique key;
3. remaining misses are dispatched under **supervision**
   (:mod:`repro.experiments.supervisor`): per-case deadlines, bounded
   retries, pool rebuild on worker death with serial fallback, and
   persisted :class:`~repro.experiments.supervisor.FailureReport` records
   for cases that never recover.  ``jobs`` argument > ``REPRO_JOBS`` env
   > ``os.cpu_count()``; with ``jobs=1`` everything runs in-process,
   which is the deterministic serial baseline;
4. results are collected in submission order (never completion order),
   round-tripped through ``SimResult.to_dict``, checked by the runtime
   invariant guard, published to both cache levels, and returned in the
   caller's original spec order — so a parallel run is bit-identical to
   a serial one.

A batch with unrecovered failures raises
:class:`~repro.experiments.supervisor.BatchFailure` by default; with
``keep_going=True`` it instead returns partial results (``None`` in the
failed slots) so a long sweep survives individual bad cases.

Observability: each batch leaves a :class:`BatchStats` in
:data:`LAST_BATCH` with wall time, per-level hit counts, supervision
counters (retries/timeouts/pool rebuilds) and simulated uops/sec;
experiments print its ``summary()`` line and ``repro cache stats``
exposes the process-wide counters.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.experiments import runner, supervisor
from repro.experiments.cache import TELEMETRY, CaseSpec, FusedGroup
from repro.experiments.supervisor import BatchFailure, FailureReport
from repro.pipeline.result import SimResult

#: Environment variable overriding the default worker count.
ENV_JOBS = "REPRO_JOBS"

#: Environment escape hatch for fused multi-accountant execution.  Set to
#: "0" (or pass ``--no-fuse`` / ``fuse=False``) to run every case as its
#: own simulation — the differential baseline fusion is verified against.
ENV_FUSE = "REPRO_FUSE"


def fuse_default() -> bool:
    """Fusion setting from the environment (on unless ``"0"``)."""
    return os.environ.get(ENV_FUSE, "1") != "0"


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else CPUs.

    ``"auto"`` (CLI ``--jobs auto`` / ``REPRO_JOBS=auto``) resolves to
    one less than the CPU count — a full batch that still leaves the
    machine responsive — with a floor of 1.  A zero or negative count is
    a configuration error and raises ``ValueError`` — silently clamping
    it to 1 used to hide typos like ``--jobs 0`` behind an unexpectedly
    serial run.
    """
    source = "jobs"
    if jobs is None:
        env = os.environ.get(ENV_JOBS)
        if env:
            source = ENV_JOBS
            jobs = env
    if jobs is None:
        return os.cpu_count() or 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return max(1, (os.cpu_count() or 1) - 1)
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"{source} must be an integer or 'auto', got {jobs!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"{source} must be a positive integer, got {jobs}")
    return jobs


@dataclass(slots=True)
class BatchStats:
    """What one ``run_cases`` batch did, for the summary line."""

    cases: int = 0
    unique: int = 0
    jobs: int = 1
    memo_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    uops_simulated: int = 0
    #: (case label, simulator wall seconds) for each case simulated here.
    case_seconds: list[tuple[str, float]] = field(default_factory=list)
    #: Supervision counters (all zero on a healthy batch).
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    #: Checkpoint resumes (cases that continued instead of restarting).
    resumes: int = 0
    resumed_instructions: int = 0
    #: Fused execution: timing groups run as one pipeline pass, and the
    #: whole simulations that fusion avoided (members minus one per group).
    fused_groups: int = 0
    fused_runs_saved: int = 0
    #: Per-key report for every case given up on this batch.
    failure_reports: dict[str, FailureReport] = field(default_factory=dict)

    @property
    def uops_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.uops_simulated / self.wall_seconds

    def summary(self) -> str:
        rate = self.uops_per_second
        line = (
            f"[harness] {self.cases} cases ({self.unique} unique): "
            f"{self.simulated} simulated, {self.memo_hits} memo hits, "
            f"{self.disk_hits} disk hits | jobs={self.jobs} "
            f"wall={self.wall_seconds:.2f}s sim={self.sim_seconds:.2f}s "
            f"({rate / 1e3:.0f}k uops/s)"
        )
        extras = []
        if self.fused_groups:
            extras.append(
                f"{self.fused_groups} fused groups "
                f"({self.fused_runs_saved} runs saved)"
            )
        if self.resumes:
            extras.append(
                f"{self.resumes} resumed "
                f"({self.resumed_instructions} instrs preserved)"
            )
        if self.retries:
            extras.append(f"{self.retries} retries")
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.pool_rebuilds:
            extras.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.serial_fallback:
            extras.append("serial fallback")
        if self.failures:
            extras.append(f"{self.failures} FAILED")
        if extras:
            line += " | " + ", ".join(extras)
        return line


#: Stats of the most recent batch (experiments print its summary line).
LAST_BATCH: BatchStats | None = None


def run_cases(
    specs: Iterable[CaseSpec],
    *,
    jobs: int | None = None,
    use_cache: bool = True,
    mp_start_method: str | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
    max_attempts: int | None = None,
    retry_backoff: float | None = None,
    checkpoint_interval: int | None = None,
    fuse: bool | None = None,
) -> list[SimResult | None]:
    """Resolve a batch of case specs, in parallel where possible.

    Returns one :class:`SimResult` per input spec, in input order.
    Duplicate specs are deduplicated in flight and share one result
    object.  ``mp_start_method`` forces a multiprocessing start method
    ("fork"/"spawn") for the pool — mainly for the determinism tests.

    Per-case failures (crashes, hangs past the deadline, invariant
    violations, corrupt payloads) are retried up to ``max_attempts``
    times; cases that never recover are persisted as failure reports
    (``repro failures list``).  With ``keep_going=False`` (default) any
    unrecovered failure raises :class:`BatchFailure` after the rest of
    the batch completes; with ``keep_going=True`` failed slots come back
    as ``None`` instead.  ``case_timeout`` overrides the per-case
    deadline otherwise scaled from each spec's instruction count.
    ``checkpoint_interval`` turns on crash-safe mid-simulation snapshots
    every that many committed instructions (else
    ``$REPRO_CHECKPOINT_INTERVAL``), letting retried cases resume
    instead of restarting.

    **Fused execution** (``fuse``, default from ``$REPRO_FUSE``, on
    unless ``"0"``): cache-missing specs sharing one *timing key* —
    identical trace, machine config, wrong-path mode, warmup and seeds,
    differing only in accounting configuration — are grouped into
    :class:`~repro.experiments.cache.FusedGroup` items and executed as a
    single pipeline run with every requested collector attached.  The
    batch cost then scales with distinct timings rather than cases; each
    member's result is bitwise identical to its unfused run and still
    lands in the disk cache under its own key.
    """
    spec_list: Sequence[CaseSpec] = list(specs)
    for spec in spec_list:
        if spec.cores > 1:
            raise ValueError(
                f"{spec.label()} is a multi-core case; use "
                "run_multicore_cases for cores > 1"
            )
    jobs = resolve_jobs(jobs)
    if fuse is None:
        fuse = fuse_default()
    start = time.perf_counter()
    before = TELEMETRY.counters()
    sims_before = len(TELEMETRY.case_seconds)

    keys = [spec.key() for spec in spec_list]
    results: dict[str, SimResult] = {}
    pending: dict[str, CaseSpec] = {}
    for key, spec in zip(keys, spec_list):
        if key in results or key in pending:
            continue
        if use_cache:
            cached = runner.lookup_cached(key)
            if cached is not None:
                results[key] = cached
                continue
        pending[key] = spec

    # Fusion: group the cache misses by timing key; each multi-member
    # group becomes one supervised item running all collectors at once.
    items: list = list(pending.items())
    fused_groups = 0
    fused_runs_saved = 0
    if fuse and len(pending) > 1:
        by_timing: dict[str, list[tuple[str, CaseSpec]]] = {}
        for key, spec in pending.items():
            by_timing.setdefault(spec.timing_key(), []).append((key, spec))
        items = []
        for members in by_timing.values():
            if len(members) == 1:
                items.append(members[0])
            else:
                group = FusedGroup(
                    specs=tuple(spec for _key, spec in members)
                )
                items.append((group.key(), group))
                fused_groups += 1
                fused_runs_saved += len(members) - 1
        if fused_groups:
            TELEMETRY.record_fusion(fused_groups, fused_runs_saved)

    outcome = supervisor.SupervisionOutcome()
    if pending:
        outcome = supervisor.run_supervised(
            items,
            jobs=jobs,
            mp_start_method=mp_start_method,
            use_cache=use_cache,
            case_timeout=case_timeout,
            max_attempts=max_attempts,
            retry_backoff=retry_backoff,
            checkpoint_interval=checkpoint_interval,
        )
        results.update(outcome.results)

    after = TELEMETRY.counters()
    stats = BatchStats(
        cases=len(spec_list),
        unique=len(set(keys)),
        jobs=jobs,
        memo_hits=int(after["memo_hits"] - before["memo_hits"]),
        disk_hits=int(after["disk_hits"] - before["disk_hits"]),
        simulated=int(
            after["sim_invocations"] - before["sim_invocations"]
        ),
        wall_seconds=time.perf_counter() - start,
        sim_seconds=after["sim_seconds"] - before["sim_seconds"],
        uops_simulated=int(
            after["uops_simulated"] - before["uops_simulated"]
        ),
        case_seconds=list(TELEMETRY.case_seconds[sims_before:]),
        failures=len(outcome.failures),
        retries=outcome.retries,
        timeouts=outcome.timeouts,
        pool_rebuilds=outcome.pool_rebuilds,
        serial_fallback=outcome.serial_fallback,
        resumes=outcome.resumes,
        resumed_instructions=outcome.resumed_instructions,
        fused_groups=fused_groups,
        fused_runs_saved=fused_runs_saved,
        failure_reports=dict(outcome.failures),
    )
    global LAST_BATCH
    LAST_BATCH = stats
    if outcome.failures and not keep_going:
        raise BatchFailure(outcome.failures)
    return [results.get(key) for key in keys]


def run_multicore_cases(
    specs: Iterable[CaseSpec],
    *,
    jobs: int | None = None,
    use_cache: bool = True,
    mp_start_method: str | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
    max_attempts: int | None = None,
    retry_backoff: float | None = None,
    checkpoint_interval: int | None = None,
) -> list[list[SimResult] | None]:
    """Resolve a batch of (possibly multi-core) socket cases.

    Returns one ``list[SimResult]`` per input spec — entry ``i`` of the
    inner list is core ``i``'s result — in input order, with ``None`` in
    failed slots under ``keep_going=True``.  A ``cores == 1`` spec is the
    historical single-core case (same cache key, same plain trace) and
    comes back as a one-element list.

    Each multi-core spec is one supervised item: the whole socket is
    attempted, timed out and retried as a unit (per-core timings are
    coupled through the shared L3/DRAM backend, so a subset cannot be
    recomputed alone), but per-core results land in the cache under their
    member keys.  A cached socket requires every member key to hit —
    partial hits rerun the whole engine.  Fusion never applies: the
    engine already runs every core's collector in one pass.
    """
    spec_list: Sequence[CaseSpec] = list(specs)
    jobs = resolve_jobs(jobs)
    start = time.perf_counter()
    before = TELEMETRY.counters()
    sims_before = len(TELEMETRY.case_seconds)

    keys = [spec.key() for spec in spec_list]
    results: dict[str, list[SimResult]] = {}
    pending: dict[str, CaseSpec] = {}
    for key, spec in zip(keys, spec_list):
        if key in results or key in pending:
            continue
        if use_cache:
            cached = runner.lookup_cached_multicore(spec)
            if cached is not None:
                results[key] = cached
                continue
        pending[key] = spec

    outcome = supervisor.SupervisionOutcome()
    if pending:
        outcome = supervisor.run_supervised(
            list(pending.items()),
            jobs=jobs,
            mp_start_method=mp_start_method,
            use_cache=use_cache,
            case_timeout=case_timeout,
            max_attempts=max_attempts,
            retry_backoff=retry_backoff,
            checkpoint_interval=checkpoint_interval,
        )
        for key, result in outcome.results.items():
            # A cores == 1 spec flows through the single-case worker
            # branch and comes back bare; normalize to the list shape.
            results[key] = result if isinstance(result, list) else [result]

    after = TELEMETRY.counters()
    stats = BatchStats(
        cases=len(spec_list),
        unique=len(set(keys)),
        jobs=jobs,
        memo_hits=int(after["memo_hits"] - before["memo_hits"]),
        disk_hits=int(after["disk_hits"] - before["disk_hits"]),
        simulated=int(
            after["sim_invocations"] - before["sim_invocations"]
        ),
        wall_seconds=time.perf_counter() - start,
        sim_seconds=after["sim_seconds"] - before["sim_seconds"],
        uops_simulated=int(
            after["uops_simulated"] - before["uops_simulated"]
        ),
        case_seconds=list(TELEMETRY.case_seconds[sims_before:]),
        failures=len(outcome.failures),
        retries=outcome.retries,
        timeouts=outcome.timeouts,
        pool_rebuilds=outcome.pool_rebuilds,
        serial_fallback=outcome.serial_fallback,
        resumes=outcome.resumes,
        resumed_instructions=outcome.resumed_instructions,
        failure_reports=dict(outcome.failures),
    )
    global LAST_BATCH
    LAST_BATCH = stats
    if outcome.failures and not keep_going:
        raise BatchFailure(outcome.failures)
    return [results.get(key) for key in keys]


def last_batch_summary() -> str | None:
    """Summary line of the most recent batch, if any ran."""
    return LAST_BATCH.summary() if LAST_BATCH is not None else None


def telemetry_mark() -> tuple[float, dict[str, float]]:
    """Snapshot (wall clock, counters) to later summarize an experiment
    spanning several batches."""
    return (time.perf_counter(), TELEMETRY.counters())


def summarize_since(mark: tuple[float, dict[str, float]]) -> str:
    """One-line harness summary of everything since ``telemetry_mark``."""
    start, before = mark
    after = TELEMETRY.counters()
    wall = time.perf_counter() - start
    simulated = int(after["sim_invocations"] - before["sim_invocations"])
    memo = int(after["memo_hits"] - before["memo_hits"])
    disk = int(after["disk_hits"] - before["disk_hits"])
    uops = after["uops_simulated"] - before["uops_simulated"]
    sim_seconds = after["sim_seconds"] - before["sim_seconds"]
    resumes = int(after["resume_events"] - before["resume_events"])
    preserved = int(
        after["resumed_instructions"] - before["resumed_instructions"]
    )
    fused = int(after["fused_groups"] - before["fused_groups"])
    saved = int(after["fused_runs_saved"] - before["fused_runs_saved"])
    rate = uops / wall if wall > 0 else 0.0
    line = (
        f"[harness] {simulated + memo + disk} case lookups: "
        f"{simulated} simulated, {memo} memo hits, {disk} disk hits | "
        f"wall={wall:.2f}s sim={sim_seconds:.2f}s "
        f"({rate / 1e3:.0f}k uops/s)"
    )
    if fused:
        line += f" | {fused} fused groups ({saved} runs saved)"
    if resumes:
        line += (
            f" | {resumes} checkpoint resumes "
            f"({preserved} instrs preserved)"
        )
    return line
