"""Multicore simulation and aggregation (paper Sec. IV).

The paper simulates the DeepBench kernels on 68-core KNL / 26-core SKX
sockets and aggregates: "We aggregate the CPI stacks by averaging them
component per component.  This is possible because all threads show
homogeneous behavior.  Similarly, we add the FLOPS stacks by their
components."

Two execution models reproduce that methodology:

* **Shared-memory engine** (the default): one
  :class:`~repro.pipeline.multicore.MulticoreSimulator` steps every core
  in cycle lockstep over a shared L3 + DRAM backend, running the
  workload's native threaded decomposition (disjoint data partitions,
  barrier synchronization, deliberate imbalance).  Per-core stacks then
  reflect *simulated* shared-resource contention and barrier wait time
  (the ``Unsched`` component) rather than an assumption of homogeneity.

* **Homogeneous cloning** (``homogeneous=True``): the paper's original
  premise — N fully independent instances of the kernel with distinct
  seeds, no shared resources, no synchronization.  This is the oracle
  the engine is differentially tested against (with contention disabled,
  the engine must reproduce it exactly) and remains available for
  methodology comparisons.

Either way the per-thread stacks aggregate the same way: CPI stacks are
averaged component per component, FLOPS stacks are summed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cores import CoreConfig
from repro.core.stack import (
    CpiStack,
    FlopsStack,
    average_stacks,
    sum_flops_stacks,
)
from repro.experiments.cache import CaseSpec
from repro.experiments.parallel import run_cases, run_multicore_cases
from repro.experiments.supervisor import IncompleteBatch
from repro.pipeline.result import SimResult


@dataclass(slots=True)
class SocketResult:
    """Aggregated socket-level stacks from one multicore simulation."""

    workload: str
    config: CoreConfig
    threads: int
    per_thread: list[SimResult]
    dispatch: CpiStack
    issue: CpiStack
    commit: CpiStack
    flops: FlopsStack | None

    @property
    def cpi(self) -> float:
        return self.commit.cpi()

    def socket_gflops(self) -> float:
        """Socket FLOPS: per-thread rate times thread count (Eq. 1)."""
        if self.flops is None:
            return 0.0
        return self.flops.gflops(
            self.config.frequency_ghz, cores=self.threads
        )

    def homogeneity(self) -> float:
        """Max relative CPI deviation across threads (paper's premise:
        "all threads show homogeneous behavior")."""
        cpis = [r.cpi for r in self.per_thread]
        mean = sum(cpis) / len(cpis)
        if mean == 0:
            return 0.0
        return max(abs(c - mean) for c in cpis) / mean


def _aggregate(
    workload: str,
    config: CoreConfig,
    threads: int,
    results: list[SimResult],
) -> SocketResult:
    reports = [r.report for r in results]
    assert all(rep is not None for rep in reports)
    dispatch = average_stacks([rep.dispatch for rep in reports])
    issue = average_stacks([rep.issue for rep in reports])
    commit = average_stacks([rep.commit for rep in reports])
    flops = None
    if reports[0].flops is not None:
        flops = sum_flops_stacks(
            [rep.flops for rep in reports if rep.flops is not None]
        )
    return SocketResult(
        workload=workload,
        config=config,
        threads=threads,
        per_thread=results,
        dispatch=dispatch,
        issue=issue,
        commit=commit,
        flops=flops,
    )


def simulate_socket(
    workload: str,
    config: CoreConfig,
    *,
    threads: int = 4,
    instructions: int | None = None,
    warmup_fraction: float = 0.3,
    base_seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
    homogeneous: bool = False,
) -> SocketResult:
    """Simulate a ``threads``-core socket and aggregate the stacks.

    By default the socket is one shared-memory engine run: every core
    executes its partition of the workload's threaded decomposition in
    cycle lockstep against a shared L3/DRAM backend, so ``per_thread[i]``
    is core ``i``'s result including contention and barrier-wait
    (``Unsched``) cycles.  With ``homogeneous=True`` the paper's original
    cloning methodology runs instead: ``threads`` fully independent
    instances with per-thread trace seed ``base_seed + thread`` and
    simulation seed ``base_seed + 1000 + thread`` — ``per_thread[i]`` is
    always thread ``i``'s result, in that fixed seed order, regardless of
    how the batch was scheduled.

    A socket aggregate over a *subset* of its threads would be silently
    wrong, so even under ``keep_going`` a missing thread raises
    :class:`IncompleteBatch`.
    """
    if threads < 1:
        raise ValueError("a socket needs at least one thread")
    if homogeneous:
        specs = [
            CaseSpec(
                workload=workload,
                config=config,
                instructions=instructions,
                seed=base_seed + thread,
                sim_seed=base_seed + 1000 + thread,
                warmup_fraction=warmup_fraction,
            )
            for thread in range(threads)
        ]
        maybe_results = run_cases(
            specs, jobs=jobs, keep_going=keep_going,
            case_timeout=case_timeout,
        )
        # Slot i of the batch IS thread i (trace seed base_seed + i):
        # run_cases returns results in input-spec order by contract, so
        # per_thread ordering never depends on scheduling or on dict
        # iteration order.
        missing = [i for i, r in enumerate(maybe_results) if r is None]
        if missing:
            raise IncompleteBatch(
                f"socket aggregate for {workload} needs all {threads} "
                f"threads; thread(s) {missing} failed — see "
                "`repro failures list`"
            )
        return _aggregate(workload, config, threads, list(maybe_results))
    spec = CaseSpec(
        workload=workload,
        config=config,
        instructions=instructions,
        seed=base_seed,
        sim_seed=base_seed + 1000,
        warmup_fraction=warmup_fraction,
        cores=threads,
    )
    batch = run_multicore_cases(
        [spec], jobs=jobs, keep_going=keep_going, case_timeout=case_timeout
    )
    per_core = batch[0]
    if per_core is None:
        raise IncompleteBatch(
            f"socket aggregate for {workload} needs the whole "
            f"{threads}-core engine run; it failed — see "
            "`repro failures list`"
        )
    return _aggregate(workload, config, threads, list(per_core))
