"""Multicore aggregation (paper Sec. IV).

The paper simulates the DeepBench kernels on 68-core KNL / 26-core SKX
sockets and aggregates: "We aggregate the CPI stacks by averaging them
component per component.  This is possible because all threads show
homogeneous behavior.  Similarly, we add the FLOPS stacks by their
components."

This module reproduces that methodology: it simulates N homogeneous
threads of the same kernel (distinct seeds and data offsets emulate the
per-thread work partition) and aggregates the per-thread stacks into one
socket-level report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.cores import CoreConfig
from repro.core.stack import (
    CpiStack,
    FlopsStack,
    average_stacks,
    sum_flops_stacks,
)
from repro.experiments.cache import CaseSpec
from repro.experiments.parallel import run_cases
from repro.experiments.supervisor import IncompleteBatch
from repro.pipeline.result import SimResult


@dataclass(slots=True)
class SocketResult:
    """Aggregated socket-level stacks from homogeneous threads."""

    workload: str
    config: CoreConfig
    threads: int
    per_thread: list[SimResult]
    dispatch: CpiStack
    issue: CpiStack
    commit: CpiStack
    flops: FlopsStack | None

    @property
    def cpi(self) -> float:
        return self.commit.cpi()

    def socket_gflops(self) -> float:
        """Socket FLOPS: per-thread rate times thread count (Eq. 1)."""
        if self.flops is None:
            return 0.0
        return self.flops.gflops(
            self.config.frequency_ghz, cores=self.threads
        )

    def homogeneity(self) -> float:
        """Max relative CPI deviation across threads (paper's premise:
        "all threads show homogeneous behavior")."""
        cpis = [r.cpi for r in self.per_thread]
        mean = sum(cpis) / len(cpis)
        if mean == 0:
            return 0.0
        return max(abs(c - mean) for c in cpis) / mean


def simulate_socket(
    workload: str,
    config: CoreConfig,
    *,
    threads: int = 4,
    instructions: int | None = None,
    warmup_fraction: float = 0.3,
    base_seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
) -> SocketResult:
    """Simulate ``threads`` homogeneous instances and aggregate.

    Each thread gets its own trace seed (different data-dependent control
    flow and addresses within the same kernel structure), modelling the
    per-thread tiles of a parallel HPC kernel.  The threads are fully
    independent, so they are declared as one batch and scheduled across
    worker processes like any other case list.  A socket aggregate over a
    *subset* of its threads would be silently wrong, so even under
    ``keep_going`` a missing thread raises.
    """
    if threads < 1:
        raise ValueError("a socket needs at least one thread")
    specs = [
        CaseSpec(
            workload=workload,
            config=config,
            instructions=instructions,
            seed=base_seed + thread,
            sim_seed=base_seed + 1000 + thread,
            warmup_fraction=warmup_fraction,
        )
        for thread in range(threads)
    ]
    maybe_results = run_cases(
        specs, jobs=jobs, keep_going=keep_going, case_timeout=case_timeout
    )
    missing = [i for i, r in enumerate(maybe_results) if r is None]
    if missing:
        raise IncompleteBatch(
            f"socket aggregate for {workload} needs all {threads} threads; "
            f"thread(s) {missing} failed — see `repro failures list`"
        )
    results: list[SimResult] = maybe_results
    reports = [r.report for r in results]
    assert all(rep is not None for rep in reports)
    dispatch = average_stacks([rep.dispatch for rep in reports])
    issue = average_stacks([rep.issue for rep in reports])
    commit = average_stacks([rep.commit for rep in reports])
    flops = None
    if reports[0].flops is not None:
        flops = sum_flops_stacks(
            [rep.flops for rep in reports if rep.flops is not None]
        )
    return SocketResult(
        workload=workload,
        config=config,
        threads=threads,
        per_thread=results,
        dispatch=dispatch,
        issue=issue,
        commit=commit,
        flops=flops,
    )
