"""Accounting overhead (Sec. IV).

"The simulation time increases by less than 1% compared to the original
version of Sniper ... which proves that adding multi-stage CPI stack and
FLOPS stack accounting has a very small overhead."

We measure the same quantity on this simulator: wall time with the full
multi-stage + FLOPS collector enabled vs. accounting disabled.  (A pure
Python accountant costs relatively more than Sniper's C++ one; the bench
records the measured ratio either way.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.config.presets import get_preset
from repro.experiments.runner import get_trace
from repro.isa.instructions import Program
from repro.pipeline.core import simulate


@dataclass(frozen=True, slots=True)
class OverheadResult:
    """Wall-clock comparison of accounting on vs. off."""

    workload: str
    preset: str
    seconds_with: float
    seconds_without: float
    cycles: int

    @property
    def overhead_fraction(self) -> float:
        """Relative slowdown from enabling accounting."""
        if self.seconds_without <= 0:
            return 0.0
        return self.seconds_with / self.seconds_without - 1.0


def measure_overhead(
    workload: str = "mcf",
    preset: str = "bdw",
    *,
    instructions: int = 10_000,
    repeats: int = 3,
    seed: int = 1,
    trace: Program | None = None,
) -> OverheadResult:
    """Best-of-N wall time with and without accounting enabled.

    Pass ``trace=`` to time a pre-materialized program: trace generation
    then stays outside every timing rep instead of riding on the first
    one (the memo makes later reps free either way).
    """
    if trace is None:
        trace = get_trace(workload, instructions, seed)
    config = get_preset(preset)
    best: dict[bool, float] = {}
    cycles = 0
    for accounting in (True, False):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            result = simulate(trace, config, accounting=accounting)
            times.append(time.perf_counter() - start)
            cycles = result.cycles
        best[accounting] = min(times)
    return OverheadResult(
        workload=workload,
        preset=preset,
        seconds_with=best[True],
        seconds_without=best[False],
        cycles=cycles,
    )
