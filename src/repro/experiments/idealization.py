"""Idealization studies: actual CPI deltas vs. stack components.

Reproduces Table I ("CPI components by idealizing structures") and the
Fig. 3 case studies (multi-stage CPI stacks before and after making
components perfect).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.idealize import (
    IDEALIZATIONS,
    PERFECT_BPRED,
    PERFECT_DCACHE,
    PERFECT_ICACHE,
    SINGLE_CYCLE_ALU,
    Idealization,
)
from repro.core.components import Component
from repro.experiments.cache import CaseSpec
from repro.experiments.parallel import run_cases
from repro.experiments.supervisor import IncompleteBatch
from repro.pipeline.result import SimResult


@dataclass(slots=True)
class IdealizationStudy:
    """Baseline plus idealized runs of one workload on one preset."""

    workload: str
    preset: str
    baseline: SimResult
    idealized: dict[str, SimResult] = field(default_factory=dict)

    def delta(self, idealization_name: str) -> float:
        """Actual CPI reduction from the named idealization."""
        return self.baseline.cpi - self.idealized[idealization_name].cpi

    def component_bounds(self, component: Component) -> tuple[float, float]:
        assert self.baseline.report is not None
        return self.baseline.report.component_bounds(component)

    def covered(self, idealization: Idealization) -> dict[Component, bool]:
        """Whether each targeted component's bounds contain the delta."""
        assert self.baseline.report is not None
        delta = self.delta(idealization.name)
        return {
            component: self.baseline.report.covers(component, delta)
            for component in idealization.targets
        }


def study_specs(
    workload: str,
    preset: str,
    idealizations: tuple[Idealization, ...],
    *,
    instructions: int | None = None,
    seed: int = 1,
) -> list[CaseSpec]:
    """The full case list of one study: baseline first, then idealized."""
    return [
        CaseSpec(
            workload=workload,
            preset=preset,
            idealization=ideal,
            instructions=instructions,
            seed=seed,
        )
        for ideal in (None, *idealizations)
    ]


def assemble_study(
    workload: str,
    preset: str,
    idealizations: tuple[Idealization, ...],
    results: list[SimResult | None],
) -> IdealizationStudy:
    """Pair ``study_specs`` results back into an :class:`IdealizationStudy`.

    Tolerates ``None`` slots from a ``keep_going`` batch for idealized
    runs (they are simply absent from :attr:`IdealizationStudy.idealized`)
    — but a study without its baseline is meaningless and raises
    :class:`~repro.experiments.supervisor.IncompleteBatch`.
    """
    if results[0] is None:
        raise IncompleteBatch(
            f"baseline case for {workload}@{preset} failed; "
            "see `repro failures list`"
        )
    study = IdealizationStudy(workload, preset, results[0])
    for ideal, result in zip(idealizations, results[1:]):
        if result is None:  # failed under keep_going: omit this column
            continue
        study.idealized[ideal.name] = result
    return study


def run_study(
    workload: str,
    preset: str,
    idealizations: tuple[Idealization, ...],
    *,
    instructions: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
) -> IdealizationStudy:
    """Simulate baseline plus each idealization of one workload."""
    specs = study_specs(
        workload, preset, idealizations, instructions=instructions, seed=seed
    )
    results = run_cases(
        specs, jobs=jobs, keep_going=keep_going, case_timeout=case_timeout
    )
    return assemble_study(workload, preset, idealizations, results)


def table1_rows(
    *, instructions: int | None = None, seed: int = 1,
    jobs: int | None = None, keep_going: bool = False,
    case_timeout: float | None = None,
) -> list[dict[str, object]]:
    """Reproduce Table I: hidden and overlapping stalls for mcf.

    KNL rows: 1-cycle ALU, perfect Dcache, and both (the combined delta
    exceeds the sum of the parts: hidden ALU stalls).  BDW rows: perfect
    bpred, perfect Dcache, and both (the combined delta is below the sum:
    overlapping penalties).  Both machines' case lists are declared in one
    batch so the harness can schedule all eight simulations at once.
    """
    rows: list[dict[str, object]] = []
    cases = (
        ("knl", (SINGLE_CYCLE_ALU, PERFECT_DCACHE,
                 SINGLE_CYCLE_ALU | PERFECT_DCACHE)),
        ("bdw", (PERFECT_BPRED, PERFECT_DCACHE,
                 PERFECT_BPRED | PERFECT_DCACHE)),
    )
    specs: list[CaseSpec] = []
    for preset, ideals in cases:
        specs.extend(
            study_specs(
                "mcf", preset, ideals, instructions=instructions, seed=seed
            )
        )
    results = run_cases(
        specs, jobs=jobs, keep_going=keep_going, case_timeout=case_timeout
    )
    cursor = 0
    for preset, ideals in cases:
        count = 1 + len(ideals)
        group = results[cursor:cursor + count]
        cursor += count
        if group[0] is None:
            # Only reachable under keep_going (otherwise run_cases raised
            # BatchFailure): without its baseline the whole machine's
            # group is meaningless, so omit those rows like any other
            # failed slot.
            continue
        study = assemble_study("mcf", preset, ideals, group)
        rows.append(
            {
                "app": f"mcf on {preset.upper()}",
                "config": "All real",
                "cpi": study.baseline.cpi,
                "diff": None,
            }
        )
        for ideal in ideals:
            result = study.idealized.get(ideal.name)
            if result is None:  # failed under keep_going: omit the row
                continue
            rows.append(
                {
                    "app": f"mcf on {preset.upper()}",
                    "config": ideal.name,
                    "cpi": result.cpi,
                    "diff": study.baseline.cpi - result.cpi,
                }
            )
    return rows


#: Fig. 3 case studies: (workload, preset, idealizations shown).
FIG3_CASES: dict[str, tuple[str, str, tuple[Idealization, ...]]] = {
    "fig3a": ("mcf", "bdw", (PERFECT_BPRED, PERFECT_DCACHE)),
    "fig3b": ("cactus", "bdw", (PERFECT_ICACHE, PERFECT_DCACHE)),
    "fig3c": ("bwaves", "bdw", (PERFECT_ICACHE, PERFECT_DCACHE)),
    "fig3d": ("povray", "knl", (SINGLE_CYCLE_ALU, PERFECT_BPRED)),
    "fig3e": ("imagick", "knl", (SINGLE_CYCLE_ALU,)),
}


def fig3_case(
    case: str, *, instructions: int | None = None, seed: int = 1,
    jobs: int | None = None, keep_going: bool = False,
    case_timeout: float | None = None,
) -> IdealizationStudy:
    """Run one Fig. 3 case study by id (fig3a .. fig3e)."""
    try:
        workload, preset, ideals = FIG3_CASES[case]
    except KeyError:
        raise KeyError(
            f"unknown Fig. 3 case {case!r}; available: {sorted(FIG3_CASES)}"
        ) from None
    return run_study(
        workload, preset, ideals, instructions=instructions, seed=seed,
        jobs=jobs, keep_going=keep_going, case_timeout=case_timeout,
    )


def all_single_idealizations() -> tuple[Idealization, ...]:
    """The four single-structure idealizations of the paper's setup."""
    return tuple(IDEALIZATIONS.values())
