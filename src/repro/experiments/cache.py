"""Content-addressed persistent result cache for the experiment harness.

Every experiment in this reproduction is a fan-out of independent
``run_case`` simulations, and the same (workload, config, idealization)
cases recur across Table I, Fig. 2, Fig. 3 and the FLOPS studies.  This
module gives those cases a durable identity:

* :class:`CaseSpec` — the full description of one simulation.  Its
  :meth:`CaseSpec.key` is a SHA-256 over a canonical JSON dump of every
  input that can change the result (workload name, instruction count,
  seeds, the *resolved* config's fields, idealization, wrong-path mode,
  warmup fraction, and the accounting schema version), so the key is a
  content address: equal inputs map to the same key in every process and
  every session.
* :class:`DiskCache` — a pickle-per-entry store under
  ``results/.cache/`` (override with ``REPRO_CACHE_DIR``), sharded by the
  first two hex digits of the key.  Entries are written atomically and a
  truncated/corrupt/stale-schema entry is treated as a miss and deleted,
  never raised.
* :class:`HarnessTelemetry` — process-wide hit/miss/simulation counters
  (the "zero simulator invocations on a warm cache" guarantee is asserted
  against :attr:`HarnessTelemetry.sim_invocations`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config.cores import CoreConfig
from repro.core import invariants
from repro.config.idealize import Idealization
from repro.config.presets import get_preset
from repro.core.multistage import CollectorSpec
from repro.core.wrongpath import WrongPathMode
from repro.pipeline.result import ACCOUNTING_SCHEMA_VERSION, SimResult

#: Fraction of the trace used to warm caches/TLBs/predictor before the
#: measured region begins (the paper fast-forwards 10B instructions).
DEFAULT_WARMUP_FRACTION = 0.3

#: Environment variable overriding the on-disk cache location.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``results/.cache``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".cache"


@dataclass(frozen=True)
class CaseSpec:
    """Everything that identifies one simulation case.

    Exactly one of ``preset`` (a registry name) or ``config`` (an explicit
    :class:`CoreConfig`, used by the multicore harness for per-thread
    variants) must be given.  ``seed`` seeds the trace generator;
    ``sim_seed`` the simulator (defaults to ``seed + 777``, matching the
    historical ``run_case`` behaviour).
    """

    workload: str
    preset: str | None = None
    config: CoreConfig | None = None
    idealization: Idealization | None = None
    instructions: int | None = None
    seed: int = 1
    mode: WrongPathMode = WrongPathMode.EXACT
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION
    sim_seed: int | None = None
    #: Accounting configuration — deliberately *excluded* from the timing
    #: key: collectors are observational, so cases differing only here
    #: share one pipeline run under fused execution.
    accounting: bool = True
    topdown: bool = False
    accounting_width: int | None = None
    #: Core count.  1 (default) is the historical single-core case — its
    #: fingerprint, key and cache entries are byte-identical to before the
    #: multi-core engine existed.  > 1 runs the workload's threaded
    #: decomposition on the shared-memory engine as ONE case (one socket
    #: run); per-core results are published under :meth:`member_key`.
    cores: int = 1

    def __post_init__(self) -> None:
        if (self.preset is None) == (self.config is None):
            raise ValueError(
                "CaseSpec needs exactly one of preset= or config="
            )
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    @property
    def simulate_seed(self) -> int:
        return self.sim_seed if self.sim_seed is not None else self.seed + 777

    def resolved_config(self) -> CoreConfig:
        """The final machine config: preset/explicit plus idealization."""
        config = self.config
        if config is None:
            assert self.preset is not None
            config = get_preset(self.preset)
        if self.idealization is not None:
            config = self.idealization.apply(config)
        return config

    def collector_spec(self) -> CollectorSpec:
        """The collector this case wants attached to its timing run."""
        return CollectorSpec(
            accounting=self.accounting,
            topdown=self.topdown,
            accounting_width=self.accounting_width,
        )

    def timing_fingerprint(self) -> dict:
        """Canonical identity of the *timing* this case needs: trace,
        machine config, wrong-path mode, warmup and seeds — everything
        except the accounting configuration.  Cases sharing this
        fingerprint are provably served by one pipeline run (collectors
        are observational), which is what fused execution exploits.
        """
        fp = {
            "schema": ACCOUNTING_SCHEMA_VERSION,
            "workload": self.workload,
            "instructions": self.instructions,
            "trace_seed": self.seed,
            "sim_seed": self.simulate_seed,
            "mode": self.mode.value,
            "warmup_fraction": self.warmup_fraction,
            "idealization": (
                self.idealization.fingerprint()
                if self.idealization is not None
                else None
            ),
            "config": self.resolved_config().fingerprint(),
        }
        if self.cores > 1:
            # Multicore identity fields appear ONLY for cores > 1, so
            # every pre-existing single-core key stays byte-identical.
            # The schema marker versions the engine's key-relevant
            # semantics (trace decomposition, seed/warmup derivation,
            # arbitration) independently of the accounting schema.
            fp["cores"] = self.cores
            fp["multicore_schema"] = 1
        return fp

    def timing_key(self) -> str:
        """SHA-256 content address of :meth:`timing_fingerprint`."""
        text = json.dumps(
            self.timing_fingerprint(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def fingerprint(self) -> dict:
        """Canonical JSON-able identity of this case (hashed into the key).

        Accounting fields are included only when they differ from the
        historical defaults, so every pre-existing cache key (default
        multi-stage accounting) is byte-identical to what it always was —
        fused execution never invalidates a warm cache.
        """
        fp = self.timing_fingerprint()
        if not self.accounting:
            fp["accounting"] = False
        if self.topdown:
            fp["topdown"] = True
        if self.accounting_width is not None:
            fp["accounting_width"] = self.accounting_width
        return fp

    def key(self) -> str:
        """Content address: SHA-256 of the canonical fingerprint."""
        text = json.dumps(
            self.fingerprint(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for telemetry and logs."""
        machine = self.preset or self.resolved_config().name
        ideal = f"+{self.idealization.name}" if self.idealization else ""
        acct = ""
        if not self.accounting:
            acct = "#noacc"
        elif self.topdown:
            acct = "#td"
        socket = f"x{self.cores}" if self.cores > 1 else ""
        return f"{self.workload}@{machine}{ideal}{acct}{socket}"

    def member_fingerprint(self, core: int) -> dict:
        """Identity of one core's slice of a multi-core case."""
        fp = self.fingerprint()
        fp["multicore_member"] = core
        return fp

    def member_key(self, core: int) -> str:
        """Cache key for core ``core``'s result of a multi-core case.

        For ``cores == 1`` the member key IS the case key: a 1-core
        socket is the historical single-core case, sharing its cache
        entry.
        """
        if self.cores == 1 and core == 0:
            return self.key()
        text = json.dumps(
            self.member_fingerprint(core), sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FusedGroup:
    """Several cases sharing one timing, executed as one pipeline run.

    Built by the scheduler when fusion is on: every member has the same
    :meth:`CaseSpec.timing_key` and differs only in accounting
    configuration.  The group duck-types the parts of the ``CaseSpec``
    surface the supervisor consumes (key/label/fingerprint/instructions/
    workload), so supervised retries, deadlines and failure reports work
    on groups unchanged; each member's result is still published under
    the member's own cache key.
    """

    specs: tuple[CaseSpec, ...]

    def __post_init__(self) -> None:
        if len(self.specs) < 2:
            raise ValueError("a FusedGroup needs at least two members")
        if any(spec.cores > 1 for spec in self.specs):
            # A multi-core case is already one engine run producing every
            # core's result; fusing it with anything would conflate the
            # engine's per-core collectors with fused-member collectors.
            raise ValueError("multi-core cases cannot be fused")
        timing_keys = {spec.timing_key() for spec in self.specs}
        if len(timing_keys) != 1:
            raise ValueError(
                "FusedGroup members must share one timing key, "
                f"got {len(timing_keys)} distinct timings"
            )

    @property
    def workload(self) -> str:
        return self.specs[0].workload

    @property
    def instructions(self) -> int | None:
        return self.specs[0].instructions

    def key(self) -> str:
        """Content address of the group (checkpoints live under this).

        Derived from the sorted member keys: any change to the membership
        or to any member's identity moves the group key, so a checkpoint
        can never be resumed by a differently-composed group.
        """
        text = "\n".join(sorted(spec.key() for spec in self.specs))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def timing_key(self) -> str:
        return self.specs[0].timing_key()

    def label(self) -> str:
        first = self.specs[0].label()
        return f"{first} (+{len(self.specs) - 1} fused)"

    def fingerprint(self) -> dict:
        return {
            "fused": [spec.fingerprint() for spec in self.specs],
            "timing": self.specs[0].timing_fingerprint(),
        }


@dataclass
class HarnessTelemetry:
    """Process-wide harness counters (reset between experiments/tests).

    ``sim_invocations`` counts simulations performed *on behalf of this
    process* — in-process runs and pool-worker runs alike (the parent
    increments when it collects a worker result), so a warm-cache rerun
    asserting "zero simulator invocations" sees through the pool.
    """

    sim_invocations: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    corrupt_entries: int = 0
    uops_simulated: int = 0
    sim_seconds: float = 0.0
    #: Checkpoint resumes: how many runs continued from a snapshot, and
    #: the total committed instructions those snapshots preserved.
    resume_events: int = 0
    resumed_instructions: int = 0
    #: Fused execution: timing groups run as one pipeline pass, and how
    #: many whole simulations that fusion avoided (members minus one per
    #: group).
    fused_groups: int = 0
    fused_runs_saved: int = 0
    #: (case label, simulated wall seconds) per simulation, newest last.
    case_seconds: list[tuple[str, float]] = field(default_factory=list)

    def reset(self) -> None:
        self.sim_invocations = 0
        self.memo_hits = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.corrupt_entries = 0
        self.uops_simulated = 0
        self.sim_seconds = 0.0
        self.resume_events = 0
        self.resumed_instructions = 0
        self.fused_groups = 0
        self.fused_runs_saved = 0
        self.case_seconds.clear()

    def record_simulation(self, label: str, result: SimResult) -> None:
        self.sim_invocations += 1
        self.uops_simulated += result.committed_uops
        self.sim_seconds += result.wall_seconds
        self.case_seconds.append((label, result.wall_seconds))

    def record_resume(self, committed_instrs: int) -> None:
        """A run continued from a checkpoint holding this much progress."""
        self.resume_events += 1
        self.resumed_instructions += committed_instrs

    def record_fusion(self, groups: int, runs_saved: int) -> None:
        """A batch fused ``groups`` timing groups, avoiding this many
        whole simulations."""
        self.fused_groups += groups
        self.fused_runs_saved += runs_saved

    def counters(self) -> dict[str, float]:
        return {
            "sim_invocations": self.sim_invocations,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "corrupt_entries": self.corrupt_entries,
            "uops_simulated": self.uops_simulated,
            "sim_seconds": self.sim_seconds,
            "resume_events": self.resume_events,
            "resumed_instructions": self.resumed_instructions,
            "fused_groups": self.fused_groups,
            "fused_runs_saved": self.fused_runs_saved,
        }


#: The process-wide telemetry instance shared by runner and scheduler.
TELEMETRY = HarnessTelemetry()


class DiskCache:
    """Pickle-per-entry content-addressed store, shared across processes.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` where each payload is
    ``{"schema": int, "spec": fingerprint, "result": SimResult.to_dict()}``.
    Writes go through an atomic rename so concurrent pool workers (or
    parallel pytest sessions) can never expose a torn entry; any
    unreadable or stale-schema entry is deleted and reported as a miss.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> SimResult | None:
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (
                not isinstance(payload, dict)
                or payload.get("schema") != ACCOUNTING_SCHEMA_VERSION
            ):
                raise ValueError("stale or malformed cache entry")
            result = SimResult.from_dict(payload["result"])
            violations = invariants.check_result(result)
            if violations:
                # An entry that decodes but breaks the accounting
                # identities (poisoned by an older bug or by bit rot) is
                # just as unusable as a truncated one: self-heal by
                # evicting and recomputing.
                raise ValueError(
                    f"cache entry violates invariants: {violations[0]}"
                )
            return result
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated pickle, stale schema, unreadable file, invariant
            # violation: a cache must degrade to a miss, never crash the
            # experiment.
            TELEMETRY.corrupt_entries += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, spec_fingerprint: dict, result: SimResult) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": ACCOUNTING_SCHEMA_VERSION,
            "spec": spec_fingerprint,
            "result": result.to_dict(),
        }
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # A read-only cache directory degrades to write-through misses.
            pass
        finally:
            # The temp file must not survive ANY exit path — including
            # interrupts and non-OSError failures mid-pickle.  After a
            # successful rename the unlink is a no-op FileNotFoundError.
            try:
                tmp.unlink()
            except OSError:
                pass

    def purge_tmp(self, *, max_age_seconds: float = 0.0) -> int:
        """Sweep stale ``*.tmp<pid>`` files left behind by killed writers.

        With ``max_age_seconds`` > 0 only files older than that are
        removed (so a concurrent writer's in-flight temp file survives).
        Returns how many were deleted.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        now = time.time()
        for path in self.root.glob("??/*.pkl.tmp*"):
            try:
                if (
                    max_age_seconds > 0
                    and now - path.stat().st_mtime < max_age_seconds
                ):
                    continue
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.pkl"))

    def purge(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.purge_tmp()
        if self.root.is_dir():
            for shard in self.root.glob("??"):
                try:
                    shard.rmdir()  # only empty shards; non-empty raise
                except OSError:
                    pass
        return removed

    def stats(self) -> dict[str, object]:
        """On-disk footprint plus this process's hit/miss counters."""
        entries = self.entries()
        total_bytes = 0
        for path in entries:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "bytes": total_bytes,
            **TELEMETRY.counters(),
        }


def get_disk_cache() -> DiskCache:
    """The cache at the currently configured root (env read per call, so
    tests can repoint ``REPRO_CACHE_DIR`` at a temp dir)."""
    return DiskCache()
