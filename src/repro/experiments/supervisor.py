"""Supervised execution of case batches: deadlines, retries, fault reports.

PR 1's scheduler had no failure story: one crashed or hung worker raised
out of ``future.result()`` and discarded the entire batch.  Sensitivity
sweeps in the style of Pompougnac/Dutilleul et al. run hundreds of
perturbed simulations per figure; at that scale individual failures are
routine and a batch must survive them.  This module wraps every case in a
**supervised attempt**:

* a per-case deadline, scaled from the spec's instruction count
  (override with ``case_timeout=`` / ``--case-timeout`` /
  ``$REPRO_CASE_TIMEOUT``);
* bounded retries with exponential backoff for transient failures
  (crashes, timeouts, corrupt payloads, invariant violations);
* automatic pool rebuild when the ``ProcessPoolExecutor`` breaks
  (a worker died hard), and graceful degradation to in-process serial
  execution once it has broken :data:`POOL_BREAK_LIMIT` times;
* per-case classification — ``crash`` / ``timeout`` / ``invariant`` /
  ``corrupt-payload`` — collected into a :class:`FailureReport` and
  persisted as ``results/failures/<key>.json`` so a later run can
  re-attempt exactly the failed cases (successes delete their stale
  record);
* a ``KeyboardInterrupt`` anywhere in the batch cancels pending futures
  and reaps the pool instead of stranding orphan workers;
* **crash recovery via checkpoints**: with checkpointing active
  (``checkpoint_interval=`` / ``--checkpoint-interval`` /
  ``$REPRO_CHECKPOINT_INTERVAL``), workers snapshot mid-simulation and a
  retry resumes from the newest valid checkpoint (corrupt files are
  checksum-detected and evicted, falling back to older ones, then a
  fresh start) with bitwise-identical results; checkpoints are cleared
  once the case's result is safely published.

Every supervision path is exercised by tests through a **deterministic
fault-injection hook**: set :data:`fault_plan` (monkeypatchable) or
``$REPRO_FAULT_PLAN`` (JSON) to make chosen cases crash, abort the worker
process, hang, or return corrupted payloads for their first N attempts.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core import invariants
from repro.experiments import runner
from repro.experiments.cache import TELEMETRY, CaseSpec, FusedGroup
from repro.pipeline import checkpoint as ckpt
from repro.pipeline.result import SimResult

#: One supervised unit of work: a single case or a fused timing group.
#: Groups duck-type the CaseSpec surface the supervisor reads (key/label/
#: fingerprint/instructions/workload), so deadlines, retries and fault
#: matching treat them uniformly; only payload validation and publishing
#: fan back out to the members.
CaseItem = "CaseSpec | FusedGroup"

#: Environment variable: one deadline (seconds) for every case.
ENV_CASE_TIMEOUT = "REPRO_CASE_TIMEOUT"
#: Environment variable: JSON fault plan (see :func:`get_fault_plan`).
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"
#: Environment variable overriding the failure-report directory.
ENV_FAILURES_DIR = "REPRO_FAILURES_DIR"
#: Environment variable capping how many failure reports are retained.
ENV_MAX_FAILURES = "REPRO_MAX_FAILURES"

#: Keep the newest this-many failure reports (older ones are evicted by
#: :func:`save_failure`); override with ``$REPRO_MAX_FAILURES``.
DEFAULT_MAX_FAILURES = 200

#: Total attempts per case (first try + retries).
DEFAULT_MAX_ATTEMPTS = 3
#: Backoff before retry round r: ``DEFAULT_BACKOFF * 2**(r-1)``, capped.
DEFAULT_BACKOFF = 0.1
BACKOFF_CAP = 2.0
#: After this many ``BrokenProcessPool`` events the batch goes serial.
POOL_BREAK_LIMIT = 2

#: Deadline scaling: BASE + PER_INSTRUCTION * instruction count.
BASE_DEADLINE_SECONDS = 20.0
PER_INSTRUCTION_SECONDS = 0.002
FALLBACK_INSTRUCTIONS = 100_000

#: Schema of the persisted failure records.
FAILURE_SCHEMA = 1

#: Deterministic fault plan (tests monkeypatch this; ``None`` defers to
#: ``$REPRO_FAULT_PLAN``).  Mapping of case matcher -> fault dict:
#: ``{"mcf@tiny": {"kind": "crash", "times": 1}}``.  A matcher is a case
#: label, a >= 8 char prefix of the case key, or ``"*"`` (every case).
#: Kinds: ``crash`` (raise), ``abort`` (kill the worker process),
#: ``hang`` (sleep ``seconds``, default 30), ``interrupt``
#: (KeyboardInterrupt), ``corrupt`` (ship a damaged payload; ``style`` in
#: {"cycles", "schema", "garbage"}), ``sigkill_mid_case`` (SIGKILL the
#: worker right after its first checkpoint lands — the retry must resume),
#: ``truncate_checkpoint`` (tear the newest checkpoint file before the
#: attempt — the recovery ladder must evict it and fall back).  ``times``
#: (default 1) faults the first N attempts only, so retries can be seen
#: to recover.
fault_plan: dict | None = None

#: Every fault kind the injection hook understands.
FAULT_KINDS = frozenset(
    {
        "crash",
        "abort",
        "hang",
        "interrupt",
        "corrupt",
        "sigkill_mid_case",
        "truncate_checkpoint",
    }
)


class FaultInjected(RuntimeError):
    """Deterministic fault raised by the injection hook."""


class CorruptPayload(RuntimeError):
    """A worker shipped a payload that cannot be decoded into a result."""


class CaseDeadlineExceeded(TimeoutError):
    """An in-process case ran past its deadline (SIGALRM path)."""


class BatchFailure(RuntimeError):
    """A batch ended with unrecovered case failures (``keep_going=False``).

    Carries the per-key :class:`FailureReport` mapping; the same reports
    are persisted under :func:`failures_dir` before this is raised.
    """

    def __init__(self, failures: dict[str, "FailureReport"]) -> None:
        self.failures = dict(failures)
        shown = list(self.failures.values())[:5]
        summary = ", ".join(
            f"{r.label} ({r.classification})" for r in shown
        )
        if len(self.failures) > len(shown):
            summary += ", ..."
        super().__init__(
            f"{len(self.failures)} case(s) failed after supervision: "
            f"{summary}; reports persisted under {failures_dir()} "
            "(see `repro failures list`; rerun with keep_going=True / "
            "--keep-going for partial results)"
        )


class IncompleteBatch(RuntimeError):
    """A ``keep_going`` batch left a hole this experiment cannot tolerate.

    Partial batches drop failed cases from reports and figures, but some
    results are meaningless without specific cases (a study without its
    baseline, a socket aggregate missing a thread).  Experiments raise
    this instead of returning a silently-wrong artifact; the failed
    cases' reports are already persisted under :func:`failures_dir`.
    """


@dataclass(slots=True)
class Attempt:
    """One supervised try of one case."""

    attempt: int
    classification: str
    error: str
    elapsed_seconds: float
    executor: str  # "pool" or "serial"


@dataclass(slots=True)
class FailureReport:
    """Why one case was given up on, with its full attempt history."""

    key: str
    label: str
    classification: str
    attempts: list[Attempt] = field(default_factory=list)
    spec: dict = field(default_factory=dict)
    #: Committed-instruction progress preserved in checkpoints: the most
    #: recent resume's starting point, else the newest surviving
    #: checkpoint's progress, else None (the case never checkpointed).
    resumed_from: int | None = None

    def to_json_dict(self) -> dict:
        return {
            "schema": FAILURE_SCHEMA,
            "key": self.key,
            "label": self.label,
            "classification": self.classification,
            "attempts": [asdict(a) for a in self.attempts],
            "spec": self.spec,
            "resumed_from": self.resumed_from,
            "saved_unix": time.time(),
        }


@dataclass(slots=True)
class SupervisionOutcome:
    """What :func:`run_supervised` resolved and what it gave up on."""

    results: dict[str, SimResult] = field(default_factory=dict)
    failures: dict[str, FailureReport] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    #: Cases that continued from a checkpoint instead of starting over.
    resumes: int = 0
    #: Committed instructions those resumes preserved (work not redone).
    resumed_instructions: int = 0


# ---------------------------------------------------------------------------
# failure-report store (results/failures/<key>.json)


def failures_dir() -> Path:
    """Failure-record root: ``$REPRO_FAILURES_DIR`` or ``results/failures``."""
    env = os.environ.get(ENV_FAILURES_DIR)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / "failures"


def failure_path(key: str) -> Path:
    return failures_dir() / f"{key}.json"


def max_failures() -> int:
    """Retention cap for ``results/failures/``: ``$REPRO_MAX_FAILURES``
    or :data:`DEFAULT_MAX_FAILURES`.  Zero or negative disables eviction.
    """
    raw = os.environ.get(ENV_MAX_FAILURES, "").strip()
    if not raw:
        return DEFAULT_MAX_FAILURES
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_MAX_FAILURES} must be an integer report count, "
            f"got {raw!r}"
        ) from None


def _evict_old_failures(cap: int) -> None:
    """Keep only the newest ``cap`` reports (by mtime, ties by name)."""
    root = failures_dir()
    if cap <= 0 or not root.is_dir():
        return
    paths = []
    for path in root.glob("*.json"):
        try:
            paths.append((path.stat().st_mtime, path.name, path))
        except OSError:  # pragma: no cover - racing unlink
            pass
    if len(paths) <= cap:
        return
    paths.sort()
    for _, _, path in paths[: len(paths) - cap]:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing unlink
            pass


def save_failure(report: FailureReport) -> None:
    """Persist one report atomically (rename over any older record).

    The temp file is fsynced before the rename so a machine-level crash
    cannot publish a torn record, and the store is capped afterwards:
    only the newest :func:`max_failures` reports survive, so an unlucky
    month of sweeps cannot grow ``results/failures/`` without bound.
    """
    path = failure_path(report.key)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(report.to_json_dict(), handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        pass
    finally:
        try:
            tmp.unlink()
        except OSError:
            pass
    _evict_old_failures(max_failures())


def load_failure(key: str) -> dict | None:
    """The persisted record for one case key, or ``None``."""
    try:
        return json.loads(failure_path(key).read_text())
    except (OSError, ValueError):
        return None


def list_failures() -> list[dict]:
    """Every readable failure record, newest first (by save time)."""
    root = failures_dir()
    if not root.is_dir():
        return []
    records = []
    for path in sorted(root.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(record, dict) and "key" in record:
            records.append(record)
    return sorted(
        records,
        key=lambda r: (-float(r.get("saved_unix", 0.0)),
                       r.get("label", ""), r["key"]),
    )


def failed_keys() -> set[str]:
    """Case keys with a persisted failure record (for targeted reruns)."""
    return {record["key"] for record in list_failures()}


def discard_failure(key: str) -> None:
    """Drop the stale record for a case that has since succeeded."""
    try:
        failure_path(key).unlink()
    except OSError:
        pass


def clear_failures() -> int:
    """Delete every failure record; returns how many were removed."""
    root = failures_dir()
    if not root.is_dir():
        return 0
    removed = 0
    for path in root.glob("*.json"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


# ---------------------------------------------------------------------------
# deterministic fault injection


def _validate_plan(plan: dict, source: str) -> dict:
    """Reject malformed fault plans with an actionable message.

    ``source`` names where the plan came from (the env var or the module
    attribute) so the error points at the thing to fix.  Always raises
    ``ValueError`` subclasses, matching the historical contract.
    """
    if not isinstance(plan, dict):
        raise ValueError(
            f"{source} must be a JSON object mapping case matchers to "
            f"fault dicts, got {type(plan).__name__}"
        )
    for matcher, fault in plan.items():
        if not isinstance(fault, dict):
            raise ValueError(
                f"{source}[{matcher!r}] must be a fault object like "
                f'{{"kind": "crash"}}, got {fault!r}'
            )
        kind = fault.get("kind")
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"{source}[{matcher!r}] has unknown fault kind {kind!r}; "
                f"known kinds: {', '.join(sorted(FAULT_KINDS))}"
            )
    return plan


def get_fault_plan() -> dict | None:
    """The active fault plan: module override, else ``$REPRO_FAULT_PLAN``.

    Both sources are validated; a malformed plan raises ``ValueError``
    naming the source, the offending entry and (for unparseable env
    JSON) the error position inside the text — never a silent no-fault
    run with a typo'd plan.
    """
    if fault_plan is not None:
        return _validate_plan(fault_plan, "fault_plan")
    env = os.environ.get(ENV_FAULT_PLAN)
    if not env:
        return None
    try:
        plan = json.loads(env)
    except json.JSONDecodeError as exc:
        window = env[max(0, exc.pos - 20):exc.pos + 20]
        raise ValueError(
            f"{ENV_FAULT_PLAN} is not valid JSON: {exc.msg} at position "
            f"{exc.pos} (near {window!r})"
        ) from None
    except ValueError as exc:  # pragma: no cover - non-decode JSON error
        raise ValueError(
            f"{ENV_FAULT_PLAN} is not valid JSON: {exc}"
        ) from None
    return _validate_plan(plan, ENV_FAULT_PLAN)


def _fault_for(plan: dict | None, spec, attempt: int) -> dict | None:
    """The fault entry that applies to this (case, attempt), if any.

    A fused group matches through its own label/key *or* through any
    member's, so a plan targeting ``mcf@tiny`` still fires when that case
    rides inside a fused run.
    """
    if not plan:
        return None
    if isinstance(spec, FusedGroup):
        labels = {spec.label()}
        labels.update(member.label() for member in spec.specs)
        keys = [spec.key()]
        keys.extend(member.key() for member in spec.specs)
    else:
        labels = {spec.label()}
        keys = [spec.key()]
    for matcher, fault in plan.items():
        if matcher == "*" or matcher in labels or (
            len(matcher) >= 8
            and any(key.startswith(matcher) for key in keys)
        ):
            if attempt < int(fault.get("times", 1)):
                return fault
    return None


def _corrupt_payload(payload: dict, style: str):
    """Damage a result payload the way a buggy worker or transport would.

    A fused payload is damaged in its first member — one bad member must
    poison the whole group (the group retries as a unit).
    """
    if style == "garbage":
        return b"\x00not a result payload\x00"
    damaged = dict(payload)
    for group_key in ("fused", "cores"):
        if group_key in damaged:
            members = [dict(m) for m in damaged[group_key]]
            members[0] = _corrupt_payload(members[0], style)
            damaged[group_key] = members
            return damaged
    if style == "schema":
        damaged["schema"] = -999
    else:  # "cycles": breaks every stack-total identity
        damaged["cycles"] = int(damaged["cycles"]) * 2 + 9973
    return damaged


def _trigger_fault(fault: dict, *, in_pool: bool) -> None:
    """Run the pre-execution part of a fault (corrupt is post-execution)."""
    kind = fault.get("kind")
    if kind == "crash":
        raise FaultInjected("injected crash")
    if kind == "interrupt":
        raise KeyboardInterrupt
    if kind == "abort":
        if in_pool:
            os._exit(70)  # hard worker death -> BrokenProcessPool
        raise FaultInjected("injected abort (in-process: degraded to crash)")
    if kind == "hang":
        time.sleep(float(fault.get("seconds", 30.0)))


def _truncate_newest_checkpoint(key: str) -> None:
    """Tear the newest checkpoint file the way a crashed writer or a bad
    disk would (the recovery ladder must evict it, not resume into it)."""
    paths = ckpt.list_case_checkpoints(key)
    if not paths:
        return
    path = paths[-1]
    try:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(max(size // 2, len(ckpt.MAGIC)))
    except OSError:  # pragma: no cover - racing unlink
        pass


def _supervised_worker(
    spec,
    attempt: int,
    plan: dict | None,
    in_pool: bool = True,
    checkpoint_interval: int | None = None,
) -> dict | bytes:
    """One supervised attempt: inject any planned fault, then simulate.

    Runs in a pool worker (the plan travels as an argument so spawn
    children see it too) or in-process for the serial path.  Ships the
    result as a ``to_dict`` payload either way, so both paths exercise
    the same schema-versioned round trip; a resumed run notes its
    starting progress under the ``"_resumed_from"`` key, which the
    parent pops before schema validation.  A :class:`FusedGroup` runs as
    one fused simulation and ships ``{"fused": [payload, ...]}`` with one
    member payload per spec, in group order; a multi-core case
    (``spec.cores > 1``) runs as one lockstep engine and ships
    ``{"cores": [payload, ...]}`` with one payload per core, in core
    order.
    """
    fault = _fault_for(plan, spec, attempt)
    on_checkpoint = None
    if fault is not None:
        kind = fault.get("kind")
        if kind == "truncate_checkpoint":
            _truncate_newest_checkpoint(spec.key())
        elif kind == "sigkill_mid_case":
            if not checkpoint_interval:
                # No checkpoint will ever land: die immediately so the
                # retry demonstrates fresh-start recovery instead.
                if in_pool:
                    os.kill(os.getpid(), signal.SIGKILL)
                raise FaultInjected(
                    "injected sigkill (no checkpointing active)"
                )
            if in_pool:
                def on_checkpoint(path, instrs):
                    os.kill(os.getpid(), signal.SIGKILL)
            else:
                # In-process SIGKILL would take the whole supervisor
                # down; degrade to an exception *after* the checkpoint
                # has landed, so the serial retry still resumes.
                def on_checkpoint(path, instrs):
                    raise FaultInjected(
                        "injected mid-case death after checkpoint"
                    )
        else:
            _trigger_fault(fault, in_pool=in_pool)
    if isinstance(spec, FusedGroup):
        results, resumed = runner.execute_fused_checkpointed(
            spec, checkpoint_interval, on_checkpoint
        )
        payload: dict = {"fused": [r.to_dict() for r in results]}
    elif getattr(spec, "cores", 1) > 1:
        results, resumed = runner.execute_multicore_checkpointed(
            spec, checkpoint_interval, on_checkpoint
        )
        payload = {"cores": [r.to_dict() for r in results]}
    else:
        result, resumed = runner.execute_spec_checkpointed(
            spec, checkpoint_interval, on_checkpoint
        )
        payload = result.to_dict()
    if resumed is not None:
        payload["_resumed_from"] = resumed
    if fault is not None and fault.get("kind") == "corrupt":
        payload = _corrupt_payload(payload, fault.get("style", "cycles"))
    return payload


# ---------------------------------------------------------------------------
# deadlines


def resolve_case_timeout(explicit: float | None = None) -> float | None:
    """The uniform deadline override: argument, else ``$REPRO_CASE_TIMEOUT``.

    ``None`` means "scale per case from the instruction count".
    """
    if explicit is not None:
        if explicit <= 0:
            raise ValueError(
                f"case timeout must be positive, got {explicit}"
            )
        return explicit
    env = os.environ.get(ENV_CASE_TIMEOUT)
    if env:
        try:
            value = float(env)
        except ValueError:
            raise ValueError(
                f"{ENV_CASE_TIMEOUT} must be a number of seconds, "
                f"got {env!r}"
            ) from None
        if value <= 0:
            raise ValueError(
                f"{ENV_CASE_TIMEOUT} must be positive, got {value}"
            )
        return value
    return None


def case_deadline(spec, override: float | None = None) -> float:
    """Seconds this case may run: override, else scaled from its size.

    A fused group gets the same scaled deadline as any of its members:
    every member shares one timing, and the attached collectors cost
    O(1) per cycle, so the group's wall clock is one member's — that is
    the entire point of fusion.
    """
    if override is not None:
        return override
    instructions = spec.instructions
    if instructions is None:
        try:
            from repro.workloads.registry import get_workload

            instructions = get_workload(spec.workload).default_instructions
        except Exception:  # unknown workload: fall back to a generous size
            instructions = FALLBACK_INSTRUCTIONS
    return BASE_DEADLINE_SECONDS + PER_INSTRUCTION_SECONDS * instructions


def _call_with_deadline(fn, deadline: float | None):
    """Run ``fn`` under a SIGALRM deadline where the platform allows it.

    Serial in-process execution has no pool to time out against; on Unix
    main threads an interval timer enforces the deadline, elsewhere the
    call runs unguarded.  The timer is disarmed the moment the call
    returns.
    """
    if deadline is None or not hasattr(signal, "setitimer"):
        return fn()

    def _on_alarm(signum, frame):
        raise CaseDeadlineExceeded(
            f"in-process case exceeded its {deadline:.1f}s deadline"
        )

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not the main thread
        return fn()
    signal.setitimer(signal.ITIMER_REAL, deadline)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# the supervisor


def validate_payload(payload, spec: CaseSpec) -> SimResult:
    """Decode and guard a worker payload (shared by pool and serial paths).

    Raises :class:`CorruptPayload` when the payload cannot be decoded and
    :class:`repro.core.invariants.InvariantViolation` when the decoded
    result breaks the accounting identities in strict mode.
    """
    if not isinstance(payload, dict):
        raise CorruptPayload(
            f"worker returned {type(payload).__name__}, not a result payload"
        )
    try:
        result = SimResult.from_dict(payload)
    except Exception as exc:
        raise CorruptPayload(f"undecodable result payload: {exc}") from exc
    invariants.verify_result(result, context=spec.label())
    return result


def validate_group_payload(
    payload, group: FusedGroup
) -> list[SimResult]:
    """Decode and guard a fused-run payload: one result per member.

    Every member result is decoded and invariant-checked independently
    under its own label — one broken collector's stack fails the whole
    group (it retries as a unit), exactly as a lone bad case would fail
    itself.
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("fused"), list
    ):
        raise CorruptPayload(
            f"worker returned {type(payload).__name__}, not a fused "
            "result payload"
        )
    members = payload["fused"]
    if len(members) != len(group.specs):
        raise CorruptPayload(
            f"fused payload has {len(members)} member results for "
            f"{len(group.specs)} specs"
        )
    return [
        validate_payload(member, spec)
        for spec, member in zip(group.specs, members)
    ]


def validate_multicore_payload(
    payload, spec: CaseSpec
) -> list[SimResult]:
    """Decode and guard a multi-core payload: one result per core.

    Each core's result is decoded and invariant-checked independently
    under a ``[coreN]`` context — one core's broken accounting fails the
    whole socket (the engine retries as a unit; per-core timings are
    coupled through the shared backend and cannot be recomputed alone).
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("cores"), list
    ):
        raise CorruptPayload(
            f"worker returned {type(payload).__name__}, not a multi-core "
            "result payload"
        )
    members = payload["cores"]
    if len(members) != spec.cores:
        raise CorruptPayload(
            f"multi-core payload has {len(members)} core results for "
            f"{spec.cores} cores"
        )
    results = []
    for core, member in enumerate(members):
        if not isinstance(member, dict):
            raise CorruptPayload(
                f"core {core} payload is {type(member).__name__}, not a "
                "result payload"
            )
        try:
            result = SimResult.from_dict(member)
        except Exception as exc:
            raise CorruptPayload(
                f"undecodable core {core} payload: {exc}"
            ) from exc
        invariants.verify_result(
            result, context=f"{spec.label()}[core{core}]"
        )
        results.append(result)
    return results


def _validate(payload, spec):
    """Route a payload to case, group or multi-core validation."""
    if isinstance(spec, FusedGroup):
        return validate_group_payload(payload, spec)
    if getattr(spec, "cores", 1) > 1:
        return validate_multicore_payload(payload, spec)
    return validate_payload(payload, spec)


def _format_error(exc: BaseException) -> str:
    """Compact traceback text for a failure record."""
    lines = traceback.format_exception_only(type(exc), exc)
    return "".join(lines).strip()[:2000]


def _record(
    attempts: dict[str, list[Attempt]],
    key: str,
    classification: str,
    error: str,
    started: float,
    executor: str,
) -> None:
    history = attempts[key]
    history.append(
        Attempt(
            attempt=len(history),
            classification=classification,
            error=error,
            elapsed_seconds=time.perf_counter() - started,
            executor=executor,
        )
    )


def _publish(
    outcome: SupervisionOutcome,
    key: str,
    spec,
    result,
    use_cache: bool,
) -> None:
    """Publish a validated result (or, for a group, every member's).

    A fused group's members each land in the cache and the outcome under
    their *own* case key — a fused batch populates exactly the same cache
    entries an unfused one would.  The group's checkpoints (stored under
    the group key) are cleared only after every member is published.
    """
    if isinstance(spec, FusedGroup):
        for member, member_result in zip(spec.specs, result):
            member_key = member.key()
            if use_cache:
                runner.store_result(member_key, member, member_result)
            outcome.results[member_key] = member_result
            discard_failure(member_key)
        ckpt.clear_checkpoints(key)
        return
    if getattr(spec, "cores", 1) > 1:
        # Per-core results land in the cache under their member keys; the
        # outcome maps the socket key to the whole per-core list.
        if use_cache:
            runner.store_multicore_result(spec, result)
        outcome.results[key] = result
        discard_failure(key)
        ckpt.clear_checkpoints(key)
        return
    if use_cache:
        runner.store_result(key, spec, result)
    outcome.results[key] = result
    discard_failure(key)
    # Only after the result is safely published do the case's checkpoints
    # become dead weight; clearing earlier would lose the recovery point
    # for a crash between finish and publish.
    ckpt.clear_checkpoints(key)


def _pop_resumed(payload) -> int | None:
    """Extract a worker's resume marker before schema validation."""
    if isinstance(payload, dict):
        resumed = payload.pop("_resumed_from", None)
        if resumed is not None:
            return int(resumed)
    return None


def _pool_round(
    pending: list,
    *,
    jobs: int,
    mp_start_method: str | None,
    plan: dict | None,
    attempts: dict[str, list[Attempt]],
    outcome: SupervisionOutcome,
    timeout_override: float | None,
    use_cache: bool,
    checkpoint_interval: int | None = None,
    resumed: dict[str, int] | None = None,
) -> tuple[list[tuple[str, CaseSpec]], bool]:
    """One pool pass over ``pending``; returns (retry list, pool broke)."""
    context = None
    if mp_start_method is not None:
        context = multiprocessing.get_context(mp_start_method)
    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(pending)), mp_context=context
    )
    retry: list = []
    broke = False
    try:
        submitted = [
            (
                key,
                spec,
                pool.submit(
                    _supervised_worker, spec, len(attempts[key]), plan,
                    True, checkpoint_interval,
                ),
            )
            for key, spec in pending
        ]
        # Deterministic collection: submission order, not completion order.
        for key, spec, future in submitted:
            started = time.perf_counter()
            deadline = case_deadline(spec, timeout_override)
            try:
                payload = future.result(timeout=deadline)
                case_resumed = _pop_resumed(payload)
                result = _validate(payload, spec)
            except (FutureTimeout, TimeoutError):
                future.cancel()
                outcome.timeouts += 1
                _record(
                    attempts, key, "timeout",
                    f"no result within the {deadline:.1f}s deadline",
                    started, "pool",
                )
                retry.append((key, spec))
            except BrokenProcessPool as exc:
                # A worker died hard.  Every uncollected future of this
                # pool is about to raise the same thing; record and retry
                # them all in a rebuilt pool (or serially, if this keeps
                # happening).
                broke = True
                _record(
                    attempts, key, "crash",
                    f"worker pool broke: {exc}", started, "pool",
                )
                retry.append((key, spec))
            except invariants.InvariantViolation as exc:
                _record(
                    attempts, key, "invariant", _format_error(exc),
                    started, "pool",
                )
                retry.append((key, spec))
            except CorruptPayload as exc:
                _record(
                    attempts, key, "corrupt-payload", _format_error(exc),
                    started, "pool",
                )
                retry.append((key, spec))
            except Exception as exc:  # worker raised: a crash
                _record(
                    attempts, key, "crash", _format_error(exc),
                    started, "pool",
                )
                retry.append((key, spec))
            else:
                # One record per actual pipeline run: a fused group or a
                # multi-core engine is a single simulator invocation
                # however many members/cores ride along (the workers'
                # telemetry died with the workers).
                TELEMETRY.record_simulation(
                    spec.label(),
                    result[0] if isinstance(result, list) else result,
                )
                if case_resumed is not None:
                    # The worker's telemetry died with the worker; the
                    # parent re-records the resume, like the simulation.
                    TELEMETRY.record_resume(case_resumed)
                    outcome.resumes += 1
                    outcome.resumed_instructions += case_resumed
                    if resumed is not None:
                        resumed[key] = case_resumed
                _publish(outcome, key, spec, result, use_cache)
    except KeyboardInterrupt:
        # Ctrl-C: cancel everything still queued and reap the pool so no
        # orphan workers keep simulating a batch nobody will collect.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=False, cancel_futures=True)
    return retry, broke


def _serial_round(
    pending: list,
    *,
    plan: dict | None,
    attempts: dict[str, list[Attempt]],
    outcome: SupervisionOutcome,
    timeout_override: float | None,
    use_cache: bool,
    checkpoint_interval: int | None = None,
    resumed: dict[str, int] | None = None,
) -> list[tuple[str, CaseSpec]]:
    """One in-process pass over ``pending``; returns the retry list.

    ``execute_spec_checkpointed`` records telemetry in-process, so
    unlike the pool path nothing is re-recorded here.
    """
    retry: list = []
    for key, spec in pending:
        started = time.perf_counter()
        deadline = case_deadline(spec, timeout_override)
        attempt_no = len(attempts[key])
        try:
            payload = _call_with_deadline(
                lambda s=spec, a=attempt_no: _supervised_worker(
                    s, a, plan, in_pool=False,
                    checkpoint_interval=checkpoint_interval,
                ),
                deadline,
            )
            case_resumed = _pop_resumed(payload)
            result = _validate(payload, spec)
        except (FutureTimeout, TimeoutError):
            outcome.timeouts += 1
            _record(
                attempts, key, "timeout",
                f"no result within the {deadline:.1f}s deadline",
                started, "serial",
            )
            retry.append((key, spec))
        except invariants.InvariantViolation as exc:
            _record(
                attempts, key, "invariant", _format_error(exc),
                started, "serial",
            )
            retry.append((key, spec))
        except CorruptPayload as exc:
            _record(
                attempts, key, "corrupt-payload", _format_error(exc),
                started, "serial",
            )
            retry.append((key, spec))
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            _record(
                attempts, key, "crash", _format_error(exc),
                started, "serial",
            )
            retry.append((key, spec))
        else:
            if case_resumed is not None:
                outcome.resumes += 1
                outcome.resumed_instructions += case_resumed
                if resumed is not None:
                    resumed[key] = case_resumed
            _publish(outcome, key, spec, result, use_cache)
    return retry


def run_supervised(
    items: list,
    *,
    jobs: int,
    mp_start_method: str | None = None,
    use_cache: bool = True,
    case_timeout: float | None = None,
    max_attempts: int | None = None,
    retry_backoff: float | None = None,
    checkpoint_interval: int | None = None,
) -> SupervisionOutcome:
    """Resolve ``(key, spec)`` cases under supervision.

    Returns a :class:`SupervisionOutcome` with one result or one
    persisted :class:`FailureReport` per input key — never an exception
    for an individual case failure (``KeyboardInterrupt`` excepted).

    An item's spec may be a :class:`FusedGroup`: the group is attempted,
    timed out and retried as one unit under its group key, but its
    members' results are published under their own case keys, and a
    given-up group persists one failure report per member (each member's
    key is what a later targeted rerun would look up).

    With checkpointing active (``checkpoint_interval=`` argument, else
    ``$REPRO_CHECKPOINT_INTERVAL``), a retried case resumes from the
    newest valid checkpoint its dead predecessor left behind instead of
    starting over; checkpoints are cleared once the case's result is
    published, and a case given up on records its preserved progress in
    its :class:`FailureReport`.
    """
    plan = get_fault_plan()
    if max_attempts is None:
        max_attempts = DEFAULT_MAX_ATTEMPTS
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    timeout_override = resolve_case_timeout(case_timeout)
    backoff = DEFAULT_BACKOFF if retry_backoff is None else retry_backoff
    if checkpoint_interval is None:
        checkpoint_interval = ckpt.checkpoint_interval_default()

    outcome = SupervisionOutcome()
    attempts: dict[str, list[Attempt]] = {key: [] for key, _ in items}
    resumed: dict[str, int] = {}
    pending = list(items)
    pool_breaks = 0
    prefer_serial = jobs <= 1 or len(items) == 1
    round_no = 0
    while pending:
        if round_no and backoff > 0:
            time.sleep(min(BACKOFF_CAP, backoff * 2 ** (round_no - 1)))
        degraded = pool_breaks >= POOL_BREAK_LIMIT
        if prefer_serial or degraded:
            if degraded and not prefer_serial:
                outcome.serial_fallback = True
            retry = _serial_round(
                pending, plan=plan, attempts=attempts, outcome=outcome,
                timeout_override=timeout_override, use_cache=use_cache,
                checkpoint_interval=checkpoint_interval, resumed=resumed,
            )
        else:
            retry, broke = _pool_round(
                pending, jobs=jobs, mp_start_method=mp_start_method,
                plan=plan, attempts=attempts, outcome=outcome,
                timeout_override=timeout_override, use_cache=use_cache,
                checkpoint_interval=checkpoint_interval, resumed=resumed,
            )
            if broke:
                pool_breaks += 1
                if pool_breaks < POOL_BREAK_LIMIT:
                    outcome.pool_rebuilds += 1
        next_pending: list = []
        for key, spec in retry:
            if len(attempts[key]) >= max_attempts:
                # How far checkpoints provably got this case: the last
                # observed resume, else the newest surviving file.
                progress = resumed.get(key, ckpt.newest_progress(key))
                members = (
                    spec.specs if isinstance(spec, FusedGroup) else (spec,)
                )
                for member in members:
                    member_key = member.key() if member is not spec else key
                    report = FailureReport(
                        key=member_key,
                        label=member.label(),
                        classification=attempts[key][-1].classification,
                        attempts=list(attempts[key]),
                        spec=member.fingerprint(),
                        resumed_from=progress,
                    )
                    outcome.failures[member_key] = report
                    save_failure(report)
            else:
                next_pending.append((key, spec))
                outcome.retries += 1
        pending = next_pending
        round_no += 1
    return outcome
