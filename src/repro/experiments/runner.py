"""Cached simulation driver for the experiment harness.

Experiments share baselines aggressively (Fig. 2 alone needs the baseline
stacks of every workload plus up to four idealized reruns each), so results
are memoized on (workload, size, seed, preset, idealization, mode).  Traces
are memoized too: baseline and idealized runs must replay the identical
program, as in the paper's methodology.
"""

from __future__ import annotations

from repro.config.idealize import Idealization
from repro.config.presets import get_preset
from repro.core.wrongpath import WrongPathMode
from repro.isa.instructions import Program
from repro.pipeline.core import simulate
from repro.pipeline.result import SimResult
from repro.workloads.registry import get_workload

#: Fraction of the trace used to warm caches/TLBs/predictor before the
#: measured region begins (the paper fast-forwards 10B instructions).
DEFAULT_WARMUP_FRACTION = 0.3

_trace_cache: dict[tuple, Program] = {}
_result_cache: dict[tuple, SimResult] = {}


def clear_cache() -> None:
    """Drop all memoized traces and results (mainly for tests)."""
    _trace_cache.clear()
    _result_cache.clear()


def get_trace(name: str, instructions: int | None, seed: int) -> Program:
    key = (name, instructions, seed)
    trace = _trace_cache.get(key)
    if trace is None:
        trace = get_workload(name).make(instructions, seed)
        _trace_cache[key] = trace
    return trace


def run_case(
    workload: str,
    preset: str,
    *,
    idealization: Idealization | None = None,
    instructions: int | None = None,
    seed: int = 1,
    mode: WrongPathMode = WrongPathMode.EXACT,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    use_cache: bool = True,
) -> SimResult:
    """Simulate ``workload`` on ``preset``, optionally idealized."""
    ideal_name = idealization.name if idealization is not None else ""
    key = (workload, preset, ideal_name, instructions, seed, mode)
    if use_cache:
        cached = _result_cache.get(key)
        if cached is not None:
            return cached
    trace = get_trace(workload, instructions, seed)
    config = get_preset(preset)
    if idealization is not None:
        config = idealization.apply(config)
    warmup = int(len(trace) * warmup_fraction)
    result = simulate(
        trace,
        config,
        mode=mode,
        warmup_instructions=warmup,
        seed=seed + 777,
    )
    if use_cache:
        _result_cache[key] = result
    return result
