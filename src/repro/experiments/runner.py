"""Cached simulation driver for the experiment harness.

Experiments share baselines aggressively (Fig. 2 alone needs the baseline
stacks of every workload plus up to four idealized reruns each), so results
are cached at three levels, consulted in order:

1. an in-process memo (identical objects within one session),
2. the persistent content-addressed disk cache (``results/.cache/``,
   shared across processes and sessions — see
   :mod:`repro.experiments.cache`),
3. the simulator itself.

Traces are memoized too: baseline and idealized runs must replay the
identical program, as in the paper's methodology.  For batch scheduling of
many cases across worker processes, see :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from repro.config.idealize import Idealization
from repro.core import invariants
from repro.core.wrongpath import WrongPathMode
from repro.experiments.cache import (
    DEFAULT_WARMUP_FRACTION,
    TELEMETRY,
    CaseSpec,
    FusedGroup,
    get_disk_cache,
)
from repro.isa.instructions import Program
from repro.pipeline import checkpoint as ckpt
from repro.pipeline.core import CoreSimulator
from repro.pipeline.result import SimResult
from repro.workloads.registry import get_workload, make_threaded_traces

__all__ = [
    "DEFAULT_WARMUP_FRACTION",
    "CaseSpec",
    "FusedGroup",
    "clear_cache",
    "execute_fused_checkpointed",
    "execute_multicore_checkpointed",
    "execute_spec",
    "execute_spec_checkpointed",
    "get_threaded_traces",
    "get_trace",
    "lookup_cached",
    "lookup_cached_multicore",
    "run_case",
    "run_multicore_spec",
    "run_spec",
    "store_multicore_result",
    "store_result",
]

_trace_cache: dict[tuple, Program] = {}
_threaded_trace_cache: dict[tuple, list[Program]] = {}
_result_cache: dict[str, SimResult] = {}


def clear_cache(*, disk: bool = True) -> int:
    """Drop all memoized traces and results.

    With ``disk=True`` (the default) the persistent on-disk cache is
    purged as well; returns the number of disk entries removed.
    """
    _trace_cache.clear()
    _threaded_trace_cache.clear()
    _result_cache.clear()
    if disk:
        return get_disk_cache().purge()
    return 0


def get_trace(name: str, instructions: int | None, seed: int) -> Program:
    key = (name, instructions, seed)
    trace = _trace_cache.get(key)
    if trace is None:
        trace = get_workload(name).make(instructions, seed)
        _trace_cache[key] = trace
    return trace


def get_threaded_traces(
    name: str, cores: int, instructions: int | None, seed: int
) -> list[Program]:
    key = (name, cores, instructions, seed)
    traces = _threaded_trace_cache.get(key)
    if traces is None:
        traces = make_threaded_traces(name, cores, instructions, seed)
        _threaded_trace_cache[key] = traces
    return traces


def execute_spec(spec: CaseSpec) -> SimResult:
    """Simulate one case unconditionally (no cache consultation).

    Every fresh result passes the runtime invariant guard before it is
    returned: in strict mode (the default) a violating result raises
    :class:`repro.core.invariants.InvariantViolation` instead of flowing
    into reports or caches.

    When ``REPRO_CHECKPOINT_INTERVAL`` is set, the run takes crash-safe
    snapshots and resumes from the newest valid one left by a previous
    attempt (see :func:`execute_spec_checkpointed`).
    """
    result, _resumed = execute_spec_checkpointed(
        spec, ckpt.checkpoint_interval_default()
    )
    return result


def execute_spec_checkpointed(
    spec: CaseSpec,
    interval: int | None,
    on_checkpoint=None,
) -> tuple[SimResult, int | None]:
    """Simulate one case with periodic crash-safe checkpoints.

    With ``interval`` set, the case resumes from the newest valid
    checkpoint under its cache key when one exists (corrupt files are
    evicted on the way — see
    :func:`repro.pipeline.checkpoint.latest_valid_checkpoint`) and writes
    a new checkpoint every ``interval`` committed instructions.  Returns
    ``(result, resumed_from)`` where ``resumed_from`` is the committed
    instruction count of the checkpoint the run continued from, or None
    for an uninterrupted (or checkpoint-free) run.  Checkpoints are *not*
    deleted here: the supervisor clears them once the result is safely
    published, so a crash between finish and publish still recovers.
    """
    trace = get_trace(spec.workload, spec.instructions, spec.seed)
    resumed_from: int | None = None
    sim: CoreSimulator | None = None
    key = spec.key()
    if interval:
        found = ckpt.latest_valid_checkpoint(key)
        if found is not None:
            _path, payload, meta = found
            sim = CoreSimulator.from_snapshot(payload)
            resumed_from = int(meta.get("committed_instrs", 0))
    if sim is None:
        config = spec.resolved_config()
        warmup = int(len(trace) * spec.warmup_fraction)
        sim = CoreSimulator(
            trace,
            config,
            mode=spec.mode,
            warmup_instructions=warmup,
            seed=spec.simulate_seed,
            collectors=(spec.collector_spec(),),
        )
    result = sim.run(
        checkpoint_interval=interval,
        checkpoint_key=key if interval else None,
        on_checkpoint=on_checkpoint,
    )
    TELEMETRY.record_simulation(spec.label(), result)
    if resumed_from is not None:
        TELEMETRY.record_resume(resumed_from)
    invariants.verify_result(result, context=spec.label())
    return result, resumed_from


def execute_fused_checkpointed(
    group: FusedGroup,
    interval: int | None,
    on_checkpoint=None,
) -> tuple[list[SimResult], int | None]:
    """Simulate one fused timing group: one pipeline run, every member's
    collector attached, one :class:`SimResult` per member (group order).

    Checkpoints live under the *group* key (derived from the sorted
    member keys), and a snapshot carries every attached collector, so a
    resumed fused run restores all members bitwise.  Telemetry counts the
    group as a single simulator invocation — fusion's entire point is
    that the batch cost scales with distinct timings, and
    ``sim_invocations`` must reflect that.  Each member's result passes
    the invariant guard independently under its own label.
    """
    first = group.specs[0]
    trace = get_trace(first.workload, first.instructions, first.seed)
    resumed_from: int | None = None
    sim: CoreSimulator | None = None
    key = group.key()
    if interval:
        found = ckpt.latest_valid_checkpoint(key)
        if found is not None:
            _path, payload, meta = found
            sim = CoreSimulator.from_snapshot(payload)
            resumed_from = int(meta.get("committed_instrs", 0))
    if sim is None:
        config = first.resolved_config()
        warmup = int(len(trace) * first.warmup_fraction)
        sim = CoreSimulator(
            trace,
            config,
            mode=first.mode,
            warmup_instructions=warmup,
            seed=first.simulate_seed,
            collectors=tuple(spec.collector_spec() for spec in group.specs),
        )
    sim.run(
        checkpoint_interval=interval,
        checkpoint_key=key if interval else None,
        on_checkpoint=on_checkpoint,
    )
    results = list(sim.fused_results)
    if len(results) != len(group.specs):  # pragma: no cover - defensive
        raise RuntimeError(
            f"fused run produced {len(results)} results for "
            f"{len(group.specs)} members"
        )
    TELEMETRY.record_simulation(group.label(), results[0])
    if resumed_from is not None:
        TELEMETRY.record_resume(resumed_from)
    for spec, result in zip(group.specs, results):
        invariants.verify_result(result, context=spec.label())
    return results, resumed_from


def execute_multicore_checkpointed(
    spec: CaseSpec,
    interval: int | None,
    on_checkpoint=None,
) -> tuple[list[SimResult], int | None]:
    """Simulate one multi-core case: a cycle-lockstep engine run over a
    shared L3/DRAM backend, one :class:`SimResult` per core (core order).

    Checkpoints live under the socket-level cache key and snapshot the
    whole engine (every core plus the shared backend), so a resumed run
    restores all cores bitwise.  Telemetry counts the engine as a single
    simulator invocation, mirroring fused groups.  Each core's result
    passes the invariant guard independently under a ``[coreN]`` label.
    """
    from repro.pipeline.multicore import MulticoreSimulator

    if spec.cores == 1:
        # A 1-core socket IS the historical single-core case (same cache
        # key, same plain trace); routing it through the threaded
        # decomposition would publish a different program's result under
        # that key.
        result, resumed = execute_spec_checkpointed(
            spec, interval, on_checkpoint
        )
        return [result], resumed
    traces = get_threaded_traces(
        spec.workload, spec.cores, spec.instructions, spec.seed
    )
    resumed_from: int | None = None
    sim: MulticoreSimulator | None = None
    key = spec.key()
    if interval:
        found = ckpt.latest_valid_checkpoint(key)
        if found is not None:
            _path, payload, meta = found
            sim = MulticoreSimulator.from_snapshot(payload)
            resumed_from = int(meta.get("committed_instrs", 0))
    if sim is None:
        config = spec.resolved_config()
        sim = MulticoreSimulator(
            traces,
            config,
            mode=spec.mode,
            seeds=tuple(
                spec.simulate_seed + core for core in range(spec.cores)
            ),
            warmup_instructions=tuple(
                int(len(trace) * spec.warmup_fraction) for trace in traces
            ),
            collectors=(spec.collector_spec(),),
        )
    multi = sim.run(
        checkpoint_interval=interval,
        checkpoint_key=key if interval else None,
        on_checkpoint=on_checkpoint,
    )
    results = list(multi.per_core)
    if len(results) != spec.cores:  # pragma: no cover - defensive
        raise RuntimeError(
            f"multicore run produced {len(results)} results for "
            f"{spec.cores} cores"
        )
    TELEMETRY.record_simulation(spec.label(), results[0])
    if resumed_from is not None:
        TELEMETRY.record_resume(resumed_from)
    invariants.verify_per_core_results(results, context=spec.label())
    return results, resumed_from


def lookup_cached(key: str) -> SimResult | None:
    """Memo -> disk lookup for one case key (updating hit counters)."""
    cached = _result_cache.get(key)
    if cached is not None:
        TELEMETRY.memo_hits += 1
        return cached
    result = get_disk_cache().get(key)
    if result is not None:
        TELEMETRY.disk_hits += 1
        _result_cache[key] = result
        return result
    TELEMETRY.disk_misses += 1
    return None


def store_result(key: str, spec: CaseSpec, result: SimResult) -> None:
    """Publish a freshly simulated result to the memo and the disk cache.

    The invariant guard gates the persistent store: in strict mode a
    violating result raises before anything is published; in non-strict
    mode it is kept in the in-process memo (with a recorded warning) but
    is never written to the disk cache, so a wrong counter cannot poison
    later sessions.
    """
    violations = invariants.verify_result(result, context=spec.label())
    _result_cache[key] = result
    if violations:
        return
    get_disk_cache().put(key, spec.fingerprint(), result)


def lookup_cached_multicore(spec: CaseSpec) -> list[SimResult] | None:
    """Cache lookup for every core of a multi-core case, or None.

    All member keys must hit — the engine cannot resimulate a subset of
    cores (their timing is coupled through the shared backend), so a
    partial hit is treated as a miss and the whole socket reruns.
    """
    if spec.cores == 1:
        cached = lookup_cached(spec.key())
        return None if cached is None else [cached]
    results = []
    for core in range(spec.cores):
        cached = lookup_cached(spec.member_key(core))
        if cached is None:
            return None
        results.append(cached)
    return results


def store_multicore_result(
    spec: CaseSpec, per_core: list[SimResult]
) -> None:
    """Publish each core's result under its member key (invariant-gated,
    same policy as :func:`store_result`)."""
    for core, result in enumerate(per_core):
        key = spec.member_key(core)
        violations = invariants.verify_result(
            result, context=f"{spec.label()}[core{core}]"
        )
        _result_cache[key] = result
        if not violations:
            get_disk_cache().put(key, spec.member_fingerprint(core), result)


def run_multicore_spec(
    spec: CaseSpec, *, use_cache: bool = True
) -> list[SimResult]:
    """Resolve one multi-core case through the cache hierarchy."""
    if use_cache:
        cached = lookup_cached_multicore(spec)
        if cached is not None:
            return cached
    per_core, _resumed = execute_multicore_checkpointed(
        spec, ckpt.checkpoint_interval_default()
    )
    if use_cache:
        store_multicore_result(spec, per_core)
    return per_core


def run_spec(spec: CaseSpec, *, use_cache: bool = True) -> SimResult:
    """Resolve one case through the cache hierarchy."""
    if not use_cache:
        return execute_spec(spec)
    key = spec.key()
    cached = lookup_cached(key)
    if cached is not None:
        return cached
    result = execute_spec(spec)
    store_result(key, spec, result)
    return result


def run_case(
    workload: str,
    preset: str,
    *,
    idealization: Idealization | None = None,
    instructions: int | None = None,
    seed: int = 1,
    mode: WrongPathMode = WrongPathMode.EXACT,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    use_cache: bool = True,
) -> SimResult:
    """Simulate ``workload`` on ``preset``, optionally idealized."""
    spec = CaseSpec(
        workload=workload,
        preset=preset,
        idealization=idealization,
        instructions=instructions,
        seed=seed,
        mode=mode,
        warmup_fraction=warmup_fraction,
    )
    return run_spec(spec, use_cache=use_cache)
