"""Fig. 2: error of single-stack components vs. multi-stage bounds.

For each of the Icache, Dcache, bpred and ALU components, the paper selects
the benchmarks where the component is at least 10% of total CPI in any
stack (filtering out 'zeros'), re-simulates with that structure perfected,
and compares the predicted component against the actual CPI reduction.  The
multi-stage representation scores zero error when the actual reduction lies
within the [min, max] of the three stacks, else the distance to the closest
bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.idealize import IDEALIZATIONS
from repro.core.components import Component
from repro.core.multistage import ALL_STAGES, Stage
from repro.experiments.cache import CaseSpec
from repro.experiments.parallel import run_cases
from repro.pipeline.result import SimResult
from repro.stats.descriptive import BoxStats, boxplot_stats
from repro.workloads.registry import SPEC_LIKE_NAMES

#: Paper's inclusion filter: component >= 10% of CPI in any stack.
SIGNIFICANCE_THRESHOLD = 0.10

#: Components studied in Fig. 2.
FIG2_COMPONENTS: tuple[Component, ...] = (
    Component.ICACHE,
    Component.BPRED,
    Component.DCACHE,
    Component.ALU_LAT,
)


@dataclass(slots=True)
class ComponentError:
    """One (workload, component) data point of Fig. 2."""

    workload: str
    preset: str
    component: Component
    #: Actual CPI reduction when the structure is made perfect.
    actual_delta: float
    #: Predicted component (CPI units) per stage.
    predicted: dict[Stage, float]
    #: Signed error (predicted - actual) per stage.
    errors: dict[Stage, float]
    #: Multi-stage error: 0 inside the bounds, else distance to closest.
    multistage_error: float

    @property
    def within_bounds(self) -> bool:
        return self.multistage_error == 0.0


def figure2_errors(
    preset: str,
    *,
    workloads: tuple[str, ...] = SPEC_LIKE_NAMES,
    components: tuple[Component, ...] = FIG2_COMPONENTS,
    instructions: int | None = None,
    seed: int = 1,
    threshold: float = SIGNIFICANCE_THRESHOLD,
    jobs: int | None = None,
    keep_going: bool = False,
    case_timeout: float | None = None,
) -> dict[Component, list[ComponentError]]:
    """Collect Fig. 2 error data points for one machine preset.

    Two batch rounds through the parallel harness: every baseline first
    (the significance filter needs their stacks), then every surviving
    (workload, component) idealized rerun at once.  With ``keep_going``
    failed cases are skipped (the workload simply contributes no data
    point) instead of aborting the figure.
    """
    out: dict[Component, list[ComponentError]] = {c: [] for c in components}
    baselines = run_cases(
        [
            CaseSpec(
                workload=workload,
                preset=preset,
                instructions=instructions,
                seed=seed,
            )
            for workload in workloads
        ],
        jobs=jobs,
        keep_going=keep_going,
        case_timeout=case_timeout,
    )
    # Apply the paper's inclusion filter to declare the idealized sweep.
    selected: list[tuple[str, Component, SimResult]] = []
    ideal_specs: list[CaseSpec] = []
    for workload, baseline in zip(workloads, baselines):
        if baseline is None:  # failed under keep_going: no data point
            continue
        report = baseline.report
        assert report is not None
        cpi = baseline.cpi
        if cpi <= 0:
            continue
        for component in components:
            # Filter: keep only benchmarks where the component reaches the
            # threshold in at least one stack ("this filters out zeros").
            significant = any(
                report.stack(stage).component_cpi(component) >= threshold * cpi
                for stage in ALL_STAGES
            )
            if not significant:
                continue
            selected.append((workload, component, baseline))
            ideal_specs.append(
                CaseSpec(
                    workload=workload,
                    preset=preset,
                    idealization=IDEALIZATIONS[component],
                    instructions=instructions,
                    seed=seed,
                )
            )
    idealized_results = run_cases(
        ideal_specs, jobs=jobs, keep_going=keep_going,
        case_timeout=case_timeout,
    )
    for (workload, component, baseline), idealized in zip(
        selected, idealized_results
    ):
        if idealized is None:  # failed under keep_going: no data point
            continue
        report = baseline.report
        assert report is not None
        actual = baseline.cpi - idealized.cpi
        predicted = {
            stage: report.stack(stage).component_cpi(component)
            for stage in ALL_STAGES
        }
        errors = {
            stage: predicted[stage] - actual for stage in ALL_STAGES
        }
        out[component].append(
            ComponentError(
                workload=workload,
                preset=preset,
                component=component,
                actual_delta=actual,
                predicted=predicted,
                errors=errors,
                multistage_error=report.bound_error(component, actual),
            )
        )
    return out


def summarize_errors(
    points: list[ComponentError],
) -> dict[str, BoxStats]:
    """Boxplot summaries (per stage plus multi-stage) for one component."""
    if not points:
        return {}
    out: dict[str, BoxStats] = {}
    for stage in ALL_STAGES:
        out[stage.value] = boxplot_stats(
            [p.errors[stage] for p in points]
        )
    out["multi"] = boxplot_stats([p.multistage_error for p in points])
    return out
