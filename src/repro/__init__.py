"""repro — Multi-stage CPI stacks and FLOPS stacks (ISPASS 2018).

A full reproduction of Eyerman, Heirman, Du Bois and Hur, "Extending the
Performance Analysis Tool Box: Multi-Stage CPI Stacks and FLOPS Stacks",
ISPASS 2018, built on a from-scratch cycle-level out-of-order core
simulator.

Quickstart::

    from repro import simulate, make_trace, get_preset

    result = simulate(make_trace("mcf"), get_preset("bdw"))
    print(result.report.dispatch.cpi_components())
"""

from repro.config import get_preset, idealize
from repro.config.idealize import (
    PERFECT_BPRED,
    PERFECT_DCACHE,
    PERFECT_ICACHE,
    SINGLE_CYCLE_ALU,
)
from repro.core import (
    Component,
    CpiStack,
    FlopsComponent,
    FlopsStack,
    MultiStageReport,
    Stage,
    WrongPathMode,
)
from repro.pipeline import CoreSimulator, SimResult, simulate
from repro.workloads import get_workload, make_trace

__version__ = "1.0.0"

__all__ = [
    "Component",
    "CoreSimulator",
    "CpiStack",
    "FlopsComponent",
    "FlopsStack",
    "MultiStageReport",
    "PERFECT_BPRED",
    "PERFECT_DCACHE",
    "PERFECT_ICACHE",
    "SINGLE_CYCLE_ALU",
    "SimResult",
    "Stage",
    "WrongPathMode",
    "__version__",
    "get_preset",
    "get_workload",
    "idealize",
    "make_trace",
    "simulate",
]
