"""Instruction builders: the decoder's macro-op -> micro-op expansion rules.

Workload generators construct traces through these builders rather than
assembling :class:`MicroOp` tuples by hand.  The builders encode the decode
conventions the paper relies on:

* **Load-op splitting** — an FP instruction with a memory operand decodes
  into a LOAD micro-op feeding the compute micro-op (Sec. V-B: "A VFP
  instruction that has a memory operand is split into two micro-operations:
  one load and one VFP calculation").  This is what makes the KNL-JIT sgemm
  kernels memory-bound in the FLOPS stack.
* **Microcoded instructions** — multi-micro-op instructions that occupy the
  microcode sequencer for several decode cycles, producing the `Microcode`
  stall component seen for povray on KNL (Fig. 3d).
"""

from __future__ import annotations

from typing import Sequence

from repro.isa.instructions import Instruction
from repro.isa.registers import FIRST_VEC_REG, NO_REG, NUM_VEC_REGS
from repro.isa.uops import MicroOp, UopClass

#: Default macro-instruction length in bytes (x86 average is ~4).
DEFAULT_LENGTH = 4

#: Per-static-instruction decode memo: ``pc -> (argument key, instruction)``.
#: Workload generators re-decode the same pc with the same arguments on
#: every loop iteration; :class:`Instruction`/:class:`MicroOp` are frozen
#: and built for sharing, so the builders return the cached object when
#: the full argument key matches.  One entry per pc (replaced on an
#: argument mismatch, e.g. a branch whose resolved direction alternates)
#: keeps the memo bounded by the static code footprint.
_DECODE_MEMO: dict[int, tuple[tuple, Instruction]] = {}


def clear_decode_memo() -> None:
    """Drop every memoized decode (test isolation hook)."""
    _DECODE_MEMO.clear()


def decode_memo_size() -> int:
    """Number of pcs currently memoized."""
    return len(_DECODE_MEMO)

#: Vector registers reserved as load-op / microcode temporaries.  Rotating
#: through a pool avoids serializing unrelated load-op instructions on a
#: single temp register.
_TEMP_POOL_SIZE = 8
_TEMP_BASE = FIRST_VEC_REG + NUM_VEC_REGS - _TEMP_POOL_SIZE


def _temp_reg(pc: int, slot: int = 0) -> int:
    """Pick a temporary vector register deterministically from the pc."""
    return _TEMP_BASE + ((pc >> 2) + slot) % _TEMP_POOL_SIZE


def nop(pc: int, *, length: int = DEFAULT_LENGTH) -> Instruction:
    """A no-op macro instruction (still occupies pipeline slots)."""
    key = ("nop", length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    instr = Instruction(pc=pc, length=length, uops=(MicroOp(UopClass.NOP),))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def alu(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Single-cycle integer ALU instruction."""
    srcs = tuple(srcs)
    key = ("alu", dst, srcs, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uop = MicroOp(UopClass.ALU, srcs=srcs, dst=dst)
    instr = Instruction(pc=pc, length=length, uops=(uop,))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def mul(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Multi-cycle integer multiply."""
    srcs = tuple(srcs)
    key = ("mul", dst, srcs, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uop = MicroOp(UopClass.MUL, srcs=srcs, dst=dst)
    instr = Instruction(pc=pc, length=length, uops=(uop,))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def div(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Long-latency integer divide."""
    srcs = tuple(srcs)
    key = ("div", dst, srcs, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uop = MicroOp(UopClass.DIV, srcs=srcs, dst=dst)
    instr = Instruction(pc=pc, length=length, uops=(uop,))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def load(
    pc: int,
    dst: int,
    addr: int,
    *,
    addr_srcs: Sequence[int] = (),
    size: int = 8,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Scalar load from ``addr`` into ``dst``."""
    addr_srcs = tuple(addr_srcs)
    key = ("load", dst, addr, addr_srcs, size, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uop = MicroOp(
        UopClass.LOAD, srcs=addr_srcs, dst=dst, addr=addr, size=size
    )
    instr = Instruction(pc=pc, length=length, uops=(uop,))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def store(
    pc: int,
    src: int,
    addr: int,
    *,
    addr_srcs: Sequence[int] = (),
    size: int = 8,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Scalar store of ``src`` to ``addr``."""
    addr_srcs = tuple(addr_srcs)
    key = ("store", src, addr, addr_srcs, size, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uop = MicroOp(
        UopClass.STORE,
        srcs=(src, *addr_srcs),
        dst=NO_REG,
        addr=addr,
        size=size,
    )
    instr = Instruction(pc=pc, length=length, uops=(uop,))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def branch(
    pc: int,
    *,
    taken: bool,
    target: int,
    srcs: Sequence[int] = (),
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Conditional branch with resolved direction and target."""
    srcs = tuple(srcs)
    key = ("branch", taken, target, srcs, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uop = MicroOp(UopClass.BRANCH, srcs=srcs)
    instr = Instruction(
        pc=pc,
        length=length,
        uops=(uop,),
        is_branch=True,
        taken=taken,
        target=target,
    )
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def _vector_compute(
    uclass: UopClass,
    pc: int,
    dst: int,
    srcs: Sequence[int],
    *,
    lanes: int,
    width_lanes: int,
    mem_addr: int | None,
    addr_srcs: Sequence[int],
    mem_size: int,
    length: int,
) -> Instruction:
    """Shared builder for vector FP / vector int compute instructions."""
    srcs = tuple(srcs)
    addr_srcs = tuple(addr_srcs)
    key = (
        "vec", uclass, dst, srcs, lanes, width_lanes,
        mem_addr, addr_srcs, mem_size, length,
    )
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    if mem_addr is None:
        uop = MicroOp(
            uclass,
            srcs=srcs,
            dst=dst,
            lanes=lanes,
            width_lanes=width_lanes,
        )
        instr = Instruction(pc=pc, length=length, uops=(uop,))
        _DECODE_MEMO[pc] = (key, instr)
        return instr
    # Memory-operand form: decode splits into load + compute micro-ops.
    temp = _temp_reg(pc)
    load_uop = MicroOp(
        UopClass.LOAD,
        srcs=addr_srcs,
        dst=temp,
        addr=mem_addr,
        size=mem_size,
    )
    compute = MicroOp(
        uclass,
        srcs=(*srcs, temp),
        dst=dst,
        lanes=lanes,
        width_lanes=width_lanes,
    )
    instr = Instruction(pc=pc, length=length, uops=(load_uop, compute))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def fp_add(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    lanes: int = 1,
    width_lanes: int = 1,
    mem_addr: int | None = None,
    addr_srcs: Sequence[int] = (),
    mem_size: int = 64,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """(Vector) FP add; one FLOP per active lane."""
    return _vector_compute(
        UopClass.FP_ADD, pc, dst, srcs,
        lanes=lanes, width_lanes=width_lanes, mem_addr=mem_addr,
        addr_srcs=addr_srcs, mem_size=mem_size, length=length,
    )


def fp_mul(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    lanes: int = 1,
    width_lanes: int = 1,
    mem_addr: int | None = None,
    addr_srcs: Sequence[int] = (),
    mem_size: int = 64,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """(Vector) FP multiply; one FLOP per active lane."""
    return _vector_compute(
        UopClass.FP_MUL, pc, dst, srcs,
        lanes=lanes, width_lanes=width_lanes, mem_addr=mem_addr,
        addr_srcs=addr_srcs, mem_size=mem_size, length=length,
    )


def fma(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    lanes: int = 1,
    width_lanes: int = 1,
    mem_addr: int | None = None,
    addr_srcs: Sequence[int] = (),
    mem_size: int = 64,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """(Vector) fused multiply-add; two FLOPs per active lane.

    With ``mem_addr`` set, this decodes into a load micro-op plus an FMA
    micro-op dependent on it — the KNL-JIT sgemm code style.
    """
    return _vector_compute(
        UopClass.FMA, pc, dst, srcs,
        lanes=lanes, width_lanes=width_lanes, mem_addr=mem_addr,
        addr_srcs=addr_srcs, mem_size=mem_size, length=length,
    )


def vec_int(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    lanes: int = 1,
    width_lanes: int = 1,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Integer SIMD op: occupies a vector unit but performs zero FLOPs."""
    srcs = tuple(srcs)
    key = ("vec_int", dst, srcs, lanes, width_lanes, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uop = MicroOp(
        UopClass.VEC_INT,
        srcs=srcs,
        dst=dst,
        lanes=lanes,
        width_lanes=width_lanes,
    )
    instr = Instruction(pc=pc, length=length, uops=(uop,))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def broadcast(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    width_lanes: int = 1,
    mem_addr: int | None = None,
    addr_srcs: Sequence[int] = (),
    mem_size: int = 8,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Broadcast a scalar into all vector lanes (SKX sgemm code style).

    With ``mem_addr`` set, decodes into load + broadcast micro-ops.
    """
    srcs = tuple(srcs)
    addr_srcs = tuple(addr_srcs)
    key = (
        "broadcast", dst, srcs, width_lanes,
        mem_addr, addr_srcs, mem_size, length,
    )
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    if mem_addr is None:
        uop = MicroOp(
            UopClass.BROADCAST,
            srcs=srcs,
            dst=dst,
            lanes=width_lanes,
            width_lanes=width_lanes,
        )
        instr = Instruction(pc=pc, length=length, uops=(uop,))
        _DECODE_MEMO[pc] = (key, instr)
        return instr
    temp = _temp_reg(pc)
    load_uop = MicroOp(
        UopClass.LOAD,
        srcs=addr_srcs,
        dst=temp,
        addr=mem_addr,
        size=mem_size,
    )
    bcast = MicroOp(
        UopClass.BROADCAST,
        srcs=(temp,),
        dst=dst,
        lanes=width_lanes,
        width_lanes=width_lanes,
    )
    instr = Instruction(pc=pc, length=length, uops=(load_uop, bcast))
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def microcoded_fp(
    pc: int,
    dst: int,
    srcs: Sequence[int] = (),
    *,
    n_uops: int = 4,
    decode_cycles: int | None = None,
    length: int = DEFAULT_LENGTH + 4,
) -> Instruction:
    """A microcoded multi-micro-op scalar FP instruction (povray-like).

    Decodes into a chain of ``n_uops`` dependent scalar FP micro-ops, and
    charges ``decode_cycles`` (default ``n_uops``) of microcode-sequencer
    decode time in the frontend.
    """
    if n_uops < 2:
        raise ValueError("a microcoded instruction needs at least 2 micro-ops")
    srcs = tuple(srcs)
    key = ("microcoded_fp", dst, srcs, n_uops, decode_cycles, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    uops: list[MicroOp] = []
    prev = NO_REG
    for slot in range(n_uops):
        uclass = UopClass.FP_MUL if slot % 2 == 0 else UopClass.FP_ADD
        uop_srcs = tuple(srcs) if prev == NO_REG else (prev,)
        uop_dst = dst if slot == n_uops - 1 else _temp_reg(pc, slot)
        uops.append(MicroOp(uclass, srcs=uop_srcs, dst=uop_dst))
        prev = uop_dst
    instr = Instruction(
        pc=pc,
        length=length,
        uops=tuple(uops),
        microcoded=True,
        decode_cycles=n_uops if decode_cycles is None else decode_cycles,
    )
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def sync_yield(
    pc: int,
    cycles: int,
    *,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Synchronization point that deschedules the core for ``cycles``.

    Models threads yielding on a barrier/lock; the descheduled time appears
    as the `Unsched` component in IPC and FLOPS stacks (Fig. 5).
    """
    if cycles <= 0:
        raise ValueError("yield must cover at least one cycle")
    key = ("sync_yield", cycles, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    instr = Instruction(
        pc=pc,
        length=length,
        uops=(MicroOp(UopClass.SYNC),),
        yield_cycles=cycles,
    )
    _DECODE_MEMO[pc] = (key, instr)
    return instr


def barrier(
    pc: int,
    cycles: int,
    *,
    length: int = DEFAULT_LENGTH,
) -> Instruction:
    """Explicit thread barrier with a local release latency of ``cycles``.

    Under the multi-core engine the core parks here until the last
    sibling arrives; the wait plus the release latency land in the
    `Unsched` component (Fig. 5).  On a standalone single core (or a
    1-core engine) nobody can be waited on, so the instruction degrades
    to exactly ``sync_yield(pc, cycles)``.
    """
    if cycles <= 0:
        raise ValueError("a barrier must cover at least one cycle")
    key = ("barrier", cycles, length)
    entry = _DECODE_MEMO.get(pc)
    if entry is not None and entry[0] == key:
        return entry[1]
    instr = Instruction(
        pc=pc,
        length=length,
        uops=(MicroOp(UopClass.SYNC),),
        yield_cycles=cycles,
        barrier=True,
    )
    _DECODE_MEMO[pc] = (key, instr)
    return instr
