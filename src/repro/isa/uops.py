"""Micro-operation model.

Macro instructions are decoded into one or more micro-ops.  Micro-ops are the
unit of dispatch, issue and commit in the pipeline; all dependence tracking
and latency modelling happens at this level, which is also the granularity at
which the paper's accounting algorithms observe the machine ("an 'instruction'
here actually means a micro-operation", Sec. V-B).
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.isa.registers import NO_REG


class UopClass(enum.IntEnum):
    """Execution class of a micro-op.

    The class determines which functional unit executes the micro-op and
    (together with the core configuration) its latency.
    """

    NOP = 0
    ALU = 1        #: single-cycle integer ALU op
    MUL = 2        #: multi-cycle integer multiply
    DIV = 3        #: long-latency, typically unpipelined divide
    BRANCH = 4     #: conditional/unconditional branch resolution
    LOAD = 5       #: memory load
    STORE = 6      #: memory store (address + data)
    FP_ADD = 7     #: vector FP add/sub
    FP_MUL = 8     #: vector FP multiply
    FP_DIV = 9     #: vector FP divide (long latency)
    FMA = 10       #: fused multiply-add (2 FLOPs per lane)
    VEC_INT = 11   #: integer SIMD op (uses the vector unit, zero FLOPs)
    BROADCAST = 12  #: value broadcast into a vector register (zero FLOPs)
    SYNC = 13      #: synchronization marker; may yield the core


#: Classes that perform vector floating-point work (count toward FLOPS).
VFP_CLASSES = frozenset(
    {UopClass.FP_ADD, UopClass.FP_MUL, UopClass.FP_DIV, UopClass.FMA}
)

#: Classes executed on the vector unit (VFP plus non-FLOP vector work).
VU_CLASSES = VFP_CLASSES | frozenset({UopClass.VEC_INT, UopClass.BROADCAST})

#: Classes that access the data memory hierarchy.
MEMORY_CLASSES = frozenset({UopClass.LOAD, UopClass.STORE})

#: FLOPs contributed per active vector lane, by class.
FLOPS_PER_LANE = {
    UopClass.FP_ADD: 1,
    UopClass.FP_MUL: 1,
    UopClass.FP_DIV: 1,
    UopClass.FMA: 2,
}


@dataclass(frozen=True, slots=True)
class MicroOp:
    """A single static micro-op within a decoded instruction.

    Instances are immutable: the same program can be replayed through many
    simulations (e.g. baseline plus idealized configurations) without
    copying.  All dynamic execution state lives in the pipeline's in-flight
    records, not here.
    """

    uclass: UopClass
    #: Source architectural registers read by this micro-op.
    srcs: tuple[int, ...] = ()
    #: Destination architectural register, or ``NO_REG``.
    dst: int = NO_REG
    #: Effective memory address for LOAD/STORE micro-ops, else -1.
    addr: int = -1
    #: Access size in bytes for memory micro-ops.
    size: int = 0
    #: Active (unmasked) vector lanes.  1 for scalar ops.
    lanes: int = 1
    #: Hardware vector width in lanes.  1 for scalar ops.
    width_lanes: int = 1

    def __post_init__(self) -> None:
        if self.lanes < 0 or self.lanes > self.width_lanes:
            raise ValueError(
                f"active lanes {self.lanes} outside [0, {self.width_lanes}]"
            )
        if self.uclass in MEMORY_CLASSES and self.addr < 0:
            raise ValueError(f"{self.uclass.name} micro-op requires an address")

    @property
    def is_vfp(self) -> bool:
        """True if this micro-op performs vector FP work."""
        return self.uclass in VFP_CLASSES

    @property
    def uses_vector_unit(self) -> bool:
        """True if this micro-op occupies a vector-unit issue slot."""
        return self.uclass in VU_CLASSES

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.uclass in MEMORY_CLASSES

    @property
    def flops(self) -> int:
        """FLOPs performed by this micro-op (0 for non-VFP classes)."""
        return FLOPS_PER_LANE.get(self.uclass, 0) * self.lanes

    @property
    def ops_per_lane(self) -> int:
        """Operation count per active lane: 2 for FMA, 1 for other VFP, 0 else."""
        return FLOPS_PER_LANE.get(self.uclass, 0)


@dataclass(slots=True)
class WrongPathTemplate:
    """Statistical recipe for synthesizing wrong-path micro-ops.

    After a branch misprediction the frontend keeps fetching down the wrong
    path.  Functional-first traces do not contain those instructions, so the
    frontend synthesizes them from this template: a weighted mix of micro-op
    classes and a probability that a wrong-path load probes the data cache.
    """

    #: (uop class, weight) mix used for synthesized wrong-path micro-ops.
    mix: tuple[tuple[UopClass, float], ...] = (
        (UopClass.ALU, 0.55),
        (UopClass.LOAD, 0.25),
        (UopClass.MUL, 0.05),
        (UopClass.BRANCH, 0.15),
    )
    #: Probability that a wrong-path load actually probes the D-cache.
    load_probe_prob: float = 0.5
    _weights: tuple[float, ...] = field(init=False, repr=False)
    _cum: tuple[float, ...] = field(init=False, repr=False)
    _classes: tuple[UopClass, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        total = sum(w for _, w in self.mix)
        if total <= 0:
            raise ValueError("wrong-path mix weights must sum to a positive value")
        self._weights = tuple(w / total for _, w in self.mix)
        # Cumulative thresholds, accumulated in mix order (the identical
        # float sums the old per-call loop produced).
        cum: list[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w
            cum.append(acc)
        self._cum = tuple(cum)
        self._classes = tuple(uclass for uclass, _ in self.mix)

    def pick_class(self, u: float) -> UopClass:
        """Map a uniform sample ``u`` in [0, 1) to a micro-op class.

        ``bisect_right`` finds the first threshold strictly greater than
        ``u`` — the same bucket the linear ``u < threshold`` scan picked.
        The final clamp covers ``u`` at/above the last threshold (float
        rounding can leave the cumulative sum just under 1.0).
        """
        index = bisect_right(self._cum, u)
        classes = self._classes
        if index >= len(classes):
            index = len(classes) - 1
        return classes[index]
