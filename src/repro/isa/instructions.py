"""Macro-instruction and program containers.

A macro instruction is the fetch/decode-level unit: it has a program counter
and byte length (driving instruction-cache behaviour), optional branch
semantics (driving the branch predictor), and a tuple of already-decoded
micro-ops (driving everything downstream of decode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.isa.uops import MicroOp, UopClass


@dataclass(frozen=True, slots=True)
class Instruction:
    """A decoded macro instruction in a functional-first trace.

    Because traces are functional-first (the correct path is known before
    timing simulation), branches carry their resolved direction and target.
    The frontend still runs a real branch predictor against them and injects
    wrong-path work on mispredictions.
    """

    pc: int
    #: Instruction length in bytes; drives I-cache line crossings.
    length: int
    #: Decoded micro-ops, in program order.
    uops: tuple[MicroOp, ...]
    #: True for control-flow instructions.
    is_branch: bool = False
    #: Resolved direction (meaningful only if ``is_branch``).
    taken: bool = False
    #: Resolved target address (meaningful only if ``is_branch`` and taken).
    target: int = 0
    #: True if the instruction requires the microcode sequencer to decode.
    microcoded: bool = False
    #: Extra decode cycles charged by the microcode sequencer.
    decode_cycles: int = 0
    #: Cycles the core is descheduled at this instruction (sync/yield).
    yield_cycles: int = 0
    #: True for an explicit multi-core barrier: under a
    #: :class:`~repro.pipeline.multicore.MulticoreSimulator` the core
    #: additionally parks until every sibling core arrives; standalone it
    #: behaves exactly like a plain sync/yield of ``yield_cycles``.
    barrier: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("instruction length must be positive")
        if not self.uops and self.yield_cycles == 0:
            raise ValueError("instruction must carry micro-ops or a yield")
        if self.barrier and self.yield_cycles <= 0:
            raise ValueError("a barrier must carry a positive yield latency")
        if self.is_branch and not any(
            u.uclass is UopClass.BRANCH for u in self.uops
        ):
            raise ValueError("branch instruction must contain a BRANCH micro-op")

    @property
    def fallthrough(self) -> int:
        """Address of the next sequential instruction."""
        return self.pc + self.length

    @property
    def next_pc(self) -> int:
        """Resolved next program counter (target if a taken branch)."""
        if self.is_branch and self.taken:
            return self.target
        return self.fallthrough

    @property
    def uop_count(self) -> int:
        return len(self.uops)


@dataclass(slots=True)
class Program:
    """An ordered dynamic instruction trace plus summary statistics.

    ``Program`` is the unit handed to the simulator.  It is immutable in
    spirit: simulations never mutate it, so one instance can back many runs
    (baseline and idealized configurations share the trace, as in the paper's
    methodology).
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def extend(self, instrs: Iterable[Instruction]) -> None:
        self.instructions.extend(instrs)

    @property
    def uop_count(self) -> int:
        """Total micro-ops in the trace."""
        return sum(len(i.uops) for i in self.instructions)

    @property
    def branch_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_branch)

    @property
    def load_count(self) -> int:
        return sum(
            1
            for i in self.instructions
            for u in i.uops
            if u.uclass is UopClass.LOAD
        )

    @property
    def store_count(self) -> int:
        return sum(
            1
            for i in self.instructions
            for u in i.uops
            if u.uclass is UopClass.STORE
        )

    @property
    def flop_count(self) -> int:
        """Total floating-point operations in the trace."""
        return sum(u.flops for i in self.instructions for u in i.uops)

    @property
    def vfp_uop_count(self) -> int:
        return sum(
            1 for i in self.instructions for u in i.uops if u.is_vfp
        )

    def summary(self) -> dict[str, float]:
        """Descriptive statistics used by tests and reports."""
        n_instr = len(self.instructions)
        n_uops = self.uop_count
        return {
            "instructions": n_instr,
            "uops": n_uops,
            "uops_per_instr": n_uops / n_instr if n_instr else 0.0,
            "branches": self.branch_count,
            "loads": self.load_count,
            "stores": self.store_count,
            "flops": self.flop_count,
            "vfp_uops": self.vfp_uop_count,
            "vfp_uop_fraction": self.vfp_uop_count / n_uops if n_uops else 0.0,
        }


def concat_programs(name: str, parts: Sequence[Program]) -> Program:
    """Concatenate traces back to back into a single program."""
    merged = Program(name)
    for part in parts:
        merged.extend(part.instructions)
    return merged
