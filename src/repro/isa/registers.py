"""Architectural register namespace.

The ISA exposes a flat integer register namespace split into an integer file
and a vector/floating-point file, mirroring the split between general-purpose
and SIMD registers on x86-class cores.  Register identifiers are plain ints so
the renamer and scheduler can index arrays directly.
"""

from __future__ import annotations

#: Number of architectural integer registers (GPRs).
NUM_INT_REGS = 32

#: Number of architectural vector/FP registers (like ZMM0..ZMM31).
NUM_VEC_REGS = 32

#: First register id belonging to the vector file.
FIRST_VEC_REG = NUM_INT_REGS

#: Total architectural registers across both files.
TOTAL_REGS = NUM_INT_REGS + NUM_VEC_REGS

#: Sentinel meaning "no register" (e.g. a store has no destination).
NO_REG = -1


def int_reg(index: int) -> int:
    """Return the register id of integer register ``index``.

    Raises :class:`ValueError` if ``index`` is outside the integer file.
    """
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def vec_reg(index: int) -> int:
    """Return the register id of vector register ``index``.

    Raises :class:`ValueError` if ``index`` is outside the vector file.
    """
    if not 0 <= index < NUM_VEC_REGS:
        raise ValueError(f"vector register index out of range: {index}")
    return FIRST_VEC_REG + index


def is_vec_reg(reg: int) -> bool:
    """True if ``reg`` names a vector/FP register."""
    return reg >= FIRST_VEC_REG
