"""Instruction-set model: architectural registers, micro-ops and macro-ops.

The simulator is trace driven: workload generators (:mod:`repro.workloads`)
emit sequences of :class:`~repro.isa.instructions.Instruction` macro-ops, each
already expanded into :class:`~repro.isa.uops.MicroOp` micro-ops by the
decoder (:mod:`repro.isa.decoder`).  The pipeline consumes micro-ops; the
frontend uses the macro-op level for instruction-cache and microcode-decode
timing, exactly as a hardware decoder would.
"""

from repro.isa.instructions import Instruction, Program
from repro.isa.registers import (
    FIRST_VEC_REG,
    NO_REG,
    NUM_INT_REGS,
    NUM_VEC_REGS,
    TOTAL_REGS,
    int_reg,
    is_vec_reg,
    vec_reg,
)
from repro.isa.uops import (
    MEMORY_CLASSES,
    VFP_CLASSES,
    VU_CLASSES,
    MicroOp,
    UopClass,
)

__all__ = [
    "FIRST_VEC_REG",
    "MEMORY_CLASSES",
    "MicroOp",
    "NO_REG",
    "NUM_INT_REGS",
    "NUM_VEC_REGS",
    "Instruction",
    "Program",
    "TOTAL_REGS",
    "UopClass",
    "VFP_CLASSES",
    "VU_CLASSES",
    "int_reg",
    "is_vec_reg",
    "vec_reg",
]
