"""Presentation: ASCII stacked bars, result tables and CSV export.

The offline environment has no plotting stack, so every paper figure is
regenerated as text: stacked bars render as labelled horizontal bars and
boxplots as five-number-summary tables.
"""

from repro.viz.ascii import (
    render_boxplot_table,
    render_cpi_stack,
    render_flops_stack,
    render_stack_bar,
    render_table,
)
from repro.viz.export import rows_to_csv, write_csv

__all__ = [
    "render_boxplot_table",
    "render_cpi_stack",
    "render_flops_stack",
    "render_stack_bar",
    "render_table",
    "rows_to_csv",
    "write_csv",
]
