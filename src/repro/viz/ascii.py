"""ASCII renderers for stacks, tables and boxplot summaries."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.components import CPI_COMPONENTS, FLOPS_COMPONENTS
from repro.core.stack import CpiStack, FlopsStack
from repro.stats.descriptive import BoxStats

#: Default width (characters) of a full-scale bar.
BAR_WIDTH = 48


def render_stack_bar(
    components: Mapping,
    *,
    order: Sequence,
    scale: float | None = None,
    width: int = BAR_WIDTH,
    value_format: str = "{:.3f}",
) -> str:
    """Render a stacked value as labelled horizontal component bars."""
    total = sum(components.values())
    if scale is None:
        scale = total if total > 0 else 1.0
    lines = []
    for component in order:
        value = components.get(component, 0.0)
        if value <= 0:
            continue
        filled = max(1, round(width * value / scale)) if value else 0
        label = getattr(component, "value", str(component))
        lines.append(
            f"  {label:<10} {'#' * filled:<{width}} "
            + value_format.format(value)
        )
    lines.append(f"  {'total':<10} {'':<{width}} "
                 + value_format.format(total))
    return "\n".join(lines)


def render_cpi_stack(stack: CpiStack, *, scale: float | None = None) -> str:
    """Render a CPI stack (one bar per component, in CPI units)."""
    header = f"{stack.name or 'stack'} @ {stack.stage}: CPI={stack.cpi():.3f}"
    body = render_stack_bar(
        stack.cpi_components(), order=CPI_COMPONENTS, scale=scale
    )
    return f"{header}\n{body}"


def render_flops_stack(
    stack: FlopsStack,
    frequency_ghz: float,
    cores: int = 1,
) -> str:
    """Render a FLOPS-rate stack (GFLOPS; height = peak GFLOPS)."""
    rates = stack.rate_components(frequency_ghz, cores)
    peak = stack.peak_per_cycle * frequency_ghz * cores
    achieved = stack.gflops(frequency_ghz, cores)
    header = (
        f"{stack.name or 'flops'}: {achieved:,.0f} / {peak:,.0f} GFLOPS "
        f"({100 * stack.achieved_fraction():.0f}% of peak)"
    )
    body = render_stack_bar(
        rates, order=FLOPS_COMPONENTS, scale=peak, value_format="{:,.0f}"
    )
    return f"{header}\n{body}"


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    divider = "  ".join("-" * w for w in widths)
    lines = [header, divider]
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_boxplot_table(
    stats: Mapping[str, BoxStats], *, title: str = ""
) -> str:
    """Render boxplot summaries (Fig. 2 style) as a table."""
    rows = []
    for name, box in stats.items():
        row: dict[str, object] = {"series": name}
        row.update(box.as_row())
        rows.append(row)
    table = render_table(
        rows, columns=["series", "low", "q1", "median", "q3", "high", "n"]
    )
    return f"{title}\n{table}" if title else table
