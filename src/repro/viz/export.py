"""CSV export of experiment rows (for downstream plotting)."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence


def rows_to_csv(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
) -> str:
    """Serialize dict rows to CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns),
                            extrasaction="ignore", lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
) -> Path:
    """Write dict rows to ``path`` as CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_csv(rows, columns=columns))
    return path
